#include "data/corpus.hpp"

namespace mvgnn::data {

namespace {

using P = Pattern;

/// NPB solver-style mix: dominated by DOALL sweeps and reductions with a
/// tail of recurrences, privatizable temporaries and cold paths.
std::vector<std::pair<P, double>> npb_solver_mix() {
  return {
      {P::VecMap, 2.5},        {P::Saxpy, 1.5},
      {P::Pipeline3, 2.5},   {P::Timestepped, 1.5},
      {P::VecScaleInPlace, 1.2}, {P::StencilCopy, 1.5},
      {P::PrivTemp, 1.2},      {P::PrivArrayTemp, 2.0},
      {P::ReduceSum, 1.2},     {P::ReduceMax, 0.8},
      {P::DotProduct, 1.0},    {P::MatMulNest, 0.8},
      {P::Recurrence, 1.5},    {P::ScalarCarried, 1.0},
      {P::TriangularUpdate, 0.5}, {P::CondUpdateMax, 0.4},
      {P::ColdPath, 0.4},      {P::CallMapPure, 4.2},
      {P::DisjointCopy, 3.4},
      {P::OffsetStencil, 3.0},  {P::OffsetRecurrence, 2.5},
      {P::ParamOffset, 2.5},
  };
}

}  // namespace

const std::vector<AppSpec>& table2_apps() {
  static const std::vector<AppSpec> apps = {
      // ---- NPB ----
      {"BT", "NPB", 184, npb_solver_mix()},
      {"SP", "NPB", 252, npb_solver_mix()},
      {"LU", "NPB", 173,
       {
           {P::VecMap, 2.0},          {P::Saxpy, 1.5},
           {P::StencilCopy, 1.5},     {P::PrivTemp, 1.0},
           {P::TriangularUpdate, 1.5}, {P::Recurrence, 1.2},
           {P::ReduceSum, 1.0},       {P::MatMulNest, 0.8},
           {P::ScalarCarried, 0.6},   {P::PrivArrayTemp, 0.8},
           {P::ReduceMax, 0.5},       {P::ColdPath, 0.3},
           {P::OffsetStencil, 2.0},   {P::OffsetRecurrence, 1.5},
           {P::ParamOffset, 1.5},
       }},
      {"IS", "NPB", 25,
       {
           {P::IndirectHistogram, 2.0}, {P::IndirectScatter, 1.5},
           {P::IndirectGather, 2.0},    {P::VecMap, 1.0},
           {P::EarlyExit, 0.8},         {P::ReduceSum, 0.7},
       }},
      {"EP", "NPB", 10,
       {
           {P::ReduceSum, 2.0}, {P::ReduceMax, 1.0},
           {P::VecMap, 1.0},    {P::CallMapPure, 1.5},
       }},
      {"CG", "NPB", 32,
       {
           {P::DotProduct, 2.0},     {P::Saxpy, 2.0},
           {P::IndirectGather, 1.5}, {P::VecMap, 1.0},
           {P::ReduceSum, 1.0},      {P::Recurrence, 0.6},
           {P::ScalarCarried, 0.4},  {P::ParamOffset, 1.2},
           {P::OffsetRecurrence, 1.0}, {P::SpMV, 2.0},
       }},
      {"MG", "NPB", 74,
       {
           {P::Jacobi2D, 2.0},     {P::StencilCopy, 2.0},
           {P::VecMap, 1.5},       {P::ReduceSum, 1.0},
           {P::PrivArrayTemp, 1.0}, {P::ReduceMax, 0.6},
           {P::Seidel2D, 0.6},     {P::Recurrence, 0.4},
           {P::OffsetStencil, 2.0}, {P::ParamOffset, 1.2},
           {P::SeparableStencil, 1.0}, {P::Timestepped, 1.5},
       }},
      {"FT", "NPB", 37,
       {
           {P::VecMap, 2.0},       {P::DisjointCopy, 1.5},
           {P::CallMapPure, 1.0},  {P::ReduceSum, 1.0},
           {P::WhileWrapped, 0.8}, {P::VecScaleInPlace, 1.0},
           {P::Recurrence, 0.5},   {P::ParamOffset, 1.5},
           {P::OffsetStencil, 1.2}, {P::Transpose, 1.2},
       }},
      // ---- PolyBench ----
      {"2mm", "PolyBench", 17,
       {
           {P::ArrayAccumNest, 1.6},
           {P::MatMulNest, 0.5},
           {P::Jacobi2D, 1.2},
           {P::VecScaleInPlace, 1.0},
           {P::PrivArrayTemp, 1.0},
           {P::DisjointCopy, 1.4},
           {P::ColdPath, 1.0},
           {P::OffsetStencil, 1.2},
           {P::ParamOffset, 1.0},
       }},
      {"jacobi-2d", "PolyBench", 10,
       {
           {P::Jacobi2D, 2.0},
           {P::Seidel2D, 1.5},
           {P::StencilCopy, 1.0},
           {P::OffsetStencil, 1.2},
       }},
      {"syr2k", "PolyBench", 11,
       {
           {P::ArrayAccumNest, 2.0},
           {P::VecScaleInPlace, 1.0},
           {P::PrivArrayTemp, 0.8},
           {P::DisjointCopy, 1.2},
           {P::ColdPath, 0.8},
       }},
      {"trmm", "PolyBench", 9,
       {
           {P::TriangularUpdate, 2.0},
           {P::ArrayAccumNest, 1.0},
           {P::VecScaleInPlace, 1.2},
           {P::DisjointCopy, 0.8},
       }},
      // ---- BOTS ----
      {"fib", "BOTS", 2, {{P::FibDriver, 1.0}}},
      {"nqueens", "BOTS", 4, {{P::NQueensStyle, 1.0}}},
  };
  return apps;
}

namespace {

Pattern sample_pattern(const std::vector<std::pair<Pattern, double>>& mix,
                       int remaining, par::Rng& rng) {
  double total = 0.0;
  for (const auto& [p, w] : mix) {
    if (pattern_loops(p) <= remaining) total += w;
  }
  if (total <= 0.0) return Pattern::ChecksumOnly;
  double pick = rng.uniform() * total;
  for (const auto& [p, w] : mix) {
    if (pattern_loops(p) > remaining) continue;
    pick -= w;
    if (pick <= 0.0) return p;
  }
  return Pattern::ChecksumOnly;
}

}  // namespace

std::vector<ProgramSpec> build_app(const AppSpec& spec, std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<ProgramSpec> out;
  int remaining = spec.target_loops;
  int idx = 0;
  while (remaining > 0) {
    const Pattern p = sample_pattern(spec.mix, remaining, rng);
    ProgramSpec ps;
    ps.suite = spec.suite;
    ps.app = spec.app;
    ps.pattern = p;
    ps.kernel = generate_kernel(
        p, spec.app + "_k" + std::to_string(idx++), rng);
    remaining -= ps.kernel.for_loops;
    out.push_back(std::move(ps));
  }
  return out;
}

std::vector<ProgramSpec> build_benchmark_corpus(std::uint64_t seed) {
  std::vector<ProgramSpec> out;
  std::uint64_t app_seed = seed;
  for (const AppSpec& spec : table2_apps()) {
    auto programs = build_app(spec, ++app_seed * 7919 + seed);
    out.insert(out.end(), std::make_move_iterator(programs.begin()),
               std::make_move_iterator(programs.end()));
  }
  return out;
}

std::vector<ProgramSpec> build_generated_corpus(int target_loops,
                                                std::uint64_t seed) {
  // Uniform sweep over all patterns, repeated until the loop budget is met:
  // the transformed dataset's goal is coverage and balance, not realism of
  // any single application.
  static const Pattern kAll[] = {
      P::VecMap,        P::VecScaleInPlace, P::Saxpy,
      P::StencilCopy,   P::ReduceSum,       P::ReduceMax,
      P::DotProduct,    P::PrivTemp,        P::PrivArrayTemp,
      P::Recurrence,    P::ScalarCarried,   P::CondUpdateMax,
      P::EarlyExit,     P::CallMapPure,     P::CallAccumShared,
      P::IndirectGather, P::IndirectHistogram, P::IndirectScatter,
      P::DisjointCopy,  P::MatMulNest,      P::Jacobi2D,
      P::Seidel2D,      P::TriangularUpdate, P::ArrayAccumNest,
      P::ColdPath,      P::WhileWrapped,
      P::FibDriver,     P::NQueensStyle,
      P::SpMV,          P::Transpose,       P::SeparableStencil,
      P::Pipeline3,     P::Pipeline3,       P::Pipeline3,
      P::Timestepped,   P::Timestepped,
      // Heavy share of the parameter-dependent patterns: the transformed
      // dataset is where template memorization must stop working.
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
      P::OffsetStencil, P::OffsetRecurrence, P::ParamOffset,
  };
  par::Rng rng(seed ^ 0xD1CEBA5EULL);
  std::vector<ProgramSpec> out;
  int remaining = target_loops;
  int idx = 0;
  std::size_t cursor = 0;
  while (remaining > 0) {
    const Pattern p = kAll[cursor++ % std::size(kAll)];
    if (pattern_loops(p) > remaining) {
      if (remaining < 1) break;
      ProgramSpec ps;
      ps.suite = "Generated";
      ps.app = "gen";
      ps.pattern = Pattern::ChecksumOnly;
      ps.kernel = generate_kernel(Pattern::ChecksumOnly,
                                  "gen_k" + std::to_string(idx++), rng);
      remaining -= ps.kernel.for_loops;
      out.push_back(std::move(ps));
      continue;
    }
    ProgramSpec ps;
    ps.suite = "Generated";
    ps.app = "gen";
    ps.pattern = p;
    ps.kernel = generate_kernel(p, "gen_k" + std::to_string(idx++), rng);
    remaining -= ps.kernel.for_loops;
    out.push_back(std::move(ps));
  }
  return out;
}

}  // namespace mvgnn::data
