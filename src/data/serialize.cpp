#include "data/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "io/checked_stream.hpp"

namespace mvgnn::data {

namespace {

constexpr std::uint32_t kMagic = 0x4D56'4453;  // "MVDS"
// Version 2 appends a (payload bytes, CRC32) footer and is parsed with
// hard length caps + offset-labeled errors; version 1 files (no footer)
// are still readable, just without checksum verification.
constexpr std::uint32_t kVersion = 2;

// ---- sanity caps ----------------------------------------------------------
// On-disk lengths are untrusted: a flipped byte in a count field must fail
// the parse with a clean error, not drive a multi-gigabyte allocation. The
// caps are ~100x beyond anything the real corpus produces.
constexpr std::uint64_t kMaxString = 1u << 20;     // 1 MiB per string
constexpr std::uint64_t kMaxVec = 1u << 24;        // 16M floats per row
constexpr std::uint64_t kMaxNodes = 1u << 20;      // nodes per sample
constexpr std::uint64_t kMaxEdges = 1u << 24;      // edges per sample
constexpr std::uint64_t kMaxSamples = 1u << 24;    // samples per dataset
constexpr std::uint64_t kMaxVocab = 1u << 24;      // token / walk entries
constexpr std::uint64_t kMaxWalkLen = 1u << 10;    // steps per anon walk
constexpr std::uint64_t kMaxTokenSeq = 1u << 24;   // tokens per loop body

// ---- error reporting ------------------------------------------------------

/// Offset of the next unread byte, captured *before* the read that might
/// fail (a failed stream reports tellg() == -1).
std::uint64_t offset_of(std::istream& is) {
  const auto pos = is.tellg();
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
}

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& what) {
  throw std::runtime_error("dataset: " + what + " at offset " +
                           std::to_string(offset));
}

// ---- primitive writers/readers --------------------------------------------

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_i32(std::ostream& os, std::int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_string(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void put_f32_vec(std::ostream& os, const std::vector<float>& v) {
  put_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::uint32_t get_u32(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (u32)");
  return v;
}
std::uint64_t get_u64(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (u64)");
  return v;
}
/// Length field with an explicit cap, checked before any allocation.
std::uint64_t get_len(std::istream& is, std::uint64_t cap, const char* what) {
  const std::uint64_t off = offset_of(is);
  const std::uint64_t n = get_u64(is);
  if (n > cap) {
    fail_at(off, std::string(what) + " length " + std::to_string(n) +
                     " exceeds cap " + std::to_string(cap));
  }
  return n;
}
std::int32_t get_i32(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  std::int32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (i32)");
  return v;
}
double get_f64(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) fail_at(off, "truncated (f64)");
  return v;
}
std::uint8_t get_u8(std::istream& is) {
  const std::uint64_t off = offset_of(is);
  char c = 0;
  is.read(&c, 1);
  if (!is) fail_at(off, "truncated (u8)");
  return static_cast<std::uint8_t>(c);
}
std::string get_string(std::istream& is) {
  const std::uint64_t n = get_len(is, kMaxString, "string");
  const std::uint64_t off = offset_of(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) fail_at(off, "truncated (string)");
  return s;
}
std::vector<float> get_f32_vec(std::istream& is) {
  const std::uint64_t n = get_len(is, kMaxVec, "f32 vector");
  const std::uint64_t off = offset_of(is);
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) fail_at(off, "truncated (f32 vec)");
  return v;
}

void put_sample(std::ostream& os, const GraphSample& s) {
  put_u32(os, s.n);
  put_u64(os, s.edges.size());
  for (std::size_t e = 0; e < s.edges.size(); ++e) {
    put_u32(os, s.edges[e].first);
    put_u32(os, s.edges[e].second);
    os.put(static_cast<char>(s.edge_kinds[e]));
  }
  put_u64(os, s.node_static.size());
  for (const auto& row : s.node_static) put_f32_vec(os, row);
  put_u64(os, s.node_dynamic.size());
  for (const auto& row : s.node_dynamic) {
    for (const double x : row) put_f64(os, x);
  }
  put_u64(os, s.aw_dist.size());
  for (const auto& row : s.aw_dist) put_f32_vec(os, row);
  for (const double x : s.loop_features) put_f64(os, x);
  put_u64(os, s.token_seq.size());
  for (const std::uint32_t t : s.token_seq) put_u32(os, t);
  put_i32(os, s.label);
  put_i32(os, s.pattern_label);
  os.put(static_cast<char>(s.tool_autopar));
  os.put(static_cast<char>(s.tool_pluto));
  os.put(static_cast<char>(s.tool_discopop));
  put_string(os, s.suite);
  put_string(os, s.app);
  put_string(os, s.kernel);
  put_string(os, s.variant);
  put_i32(os, s.loop_line);
}

GraphSample get_sample(std::istream& is) {
  GraphSample s;
  {
    const std::uint64_t off = offset_of(is);
    s.n = get_u32(is);
    if (s.n > kMaxNodes) {
      fail_at(off, "node count " + std::to_string(s.n) + " exceeds cap " +
                       std::to_string(kMaxNodes));
    }
  }
  // Note: no reserve() from on-disk counts anywhere below — vectors grow
  // only as bytes actually arrive, so a corrupt count field costs a parse
  // error, not a giant allocation.
  const std::uint64_t n_edges = get_len(is, kMaxEdges, "edge list");
  for (std::uint64_t e = 0; e < n_edges; ++e) {
    const std::uint64_t off = offset_of(is);
    const std::uint32_t a = get_u32(is);
    const std::uint32_t b = get_u32(is);
    if (a >= s.n || b >= s.n) {
      fail_at(off, "edge endpoint (" + std::to_string(a) + "," +
                       std::to_string(b) + ") out of range [0," +
                       std::to_string(s.n) + ")");
    }
    s.edges.emplace_back(a, b);
    const std::uint8_t kind = get_u8(is);
    if (kind >= GraphSample::kNumRelations) {
      fail_at(off, "edge kind " + std::to_string(kind) + " out of range");
    }
    s.edge_kinds.push_back(kind);
  }
  {
    const std::uint64_t off = offset_of(is);
    const std::uint64_t rows = get_len(is, kMaxNodes, "node_static");
    if (rows != s.n) {
      fail_at(off, "node_static rows " + std::to_string(rows) +
                       " != node count " + std::to_string(s.n));
    }
  }
  s.node_static.resize(s.n);
  for (auto& row : s.node_static) row = get_f32_vec(is);
  {
    const std::uint64_t off = offset_of(is);
    const std::uint64_t rows = get_len(is, kMaxNodes, "node_dynamic");
    if (rows != s.n) {
      fail_at(off, "node_dynamic rows " + std::to_string(rows) +
                       " != node count " + std::to_string(s.n));
    }
  }
  s.node_dynamic.resize(s.n);
  for (auto& row : s.node_dynamic) {
    for (double& x : row) x = get_f64(is);
  }
  {
    const std::uint64_t off = offset_of(is);
    const std::uint64_t rows = get_len(is, kMaxNodes, "aw_dist");
    if (rows != s.n) {
      fail_at(off, "aw_dist rows " + std::to_string(rows) +
                       " != node count " + std::to_string(s.n));
    }
  }
  s.aw_dist.resize(s.n);
  for (auto& row : s.aw_dist) row = get_f32_vec(is);
  for (double& x : s.loop_features) x = get_f64(is);
  const std::uint64_t n_tokens = get_len(is, kMaxTokenSeq, "token sequence");
  for (std::uint64_t t = 0; t < n_tokens; ++t) {
    s.token_seq.push_back(get_u32(is));
  }
  s.label = get_i32(is);
  s.pattern_label = get_i32(is);
  s.tool_autopar = get_u8(is) != 0;
  s.tool_pluto = get_u8(is) != 0;
  s.tool_discopop = get_u8(is) != 0;
  s.suite = get_string(is);
  s.app = get_string(is);
  s.kernel = get_string(is);
  s.variant = get_string(is);
  s.loop_line = get_i32(is);
  return s;
}

/// The whole dataset body, between the (magic, version) header and the
/// (bytes, crc) footer. Shared by both versions — v1 simply has no footer.
void put_payload(std::ostream& os, const Dataset& ds) {
  put_u32(os, ds.static_dim);
  put_u32(os, ds.aw_vocab);

  // inst2vec table.
  put_u32(os, ds.inst2vec.vocab_size());
  put_u32(os, ds.inst2vec.dim());
  for (std::uint32_t v = 0; v < ds.inst2vec.vocab_size(); ++v) {
    const auto row = ds.inst2vec.row(v);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(float)));
  }

  // Token vocabulary.
  put_u64(os, ds.token_vocab.map().size());
  for (const auto& [token, id] : ds.token_vocab.map()) {
    put_string(os, token);
    put_u32(os, id);
  }
  os.put(static_cast<char>(ds.token_vocab.frozen()));

  // Anonymous-walk vocabulary.
  put_u64(os, ds.aw_vocab_table.map().size());
  for (const auto& [walk, id] : ds.aw_vocab_table.map()) {
    put_u64(os, walk.size());
    os.write(reinterpret_cast<const char*>(walk.data()),
             static_cast<std::streamsize>(walk.size()));
    put_u32(os, id);
  }
  os.put(static_cast<char>(ds.aw_vocab_table.frozen()));

  // Samples.
  put_u64(os, ds.samples.size());
  for (const GraphSample& s : ds.samples) put_sample(os, s);
}

Dataset get_payload(std::istream& is) {
  Dataset ds;
  ds.static_dim = get_u32(is);
  ds.aw_vocab = get_u32(is);

  {
    const std::uint64_t off = offset_of(is);
    const std::uint32_t i2v_vocab = get_u32(is);
    const std::uint32_t i2v_dim = get_u32(is);
    if (i2v_vocab > kMaxVocab || i2v_dim > kMaxVec) {
      fail_at(off, "inst2vec table " + std::to_string(i2v_vocab) + "x" +
                       std::to_string(i2v_dim) + " exceeds cap");
    }
    ds.inst2vec = embedding::EmbeddingTable(i2v_vocab, i2v_dim);
    const std::uint64_t row_off = offset_of(is);
    for (std::uint32_t v = 0; v < i2v_vocab; ++v) {
      auto row = ds.inst2vec.row(v);
      is.read(reinterpret_cast<char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
    }
    if (!is) fail_at(row_off, "truncated (inst2vec)");
  }

  std::unordered_map<std::string, std::uint32_t> tokens;
  const std::uint64_t n_tokens = get_len(is, kMaxVocab, "token vocabulary");
  for (std::uint64_t i = 0; i < n_tokens; ++i) {
    std::string token = get_string(is);
    const std::uint32_t id = get_u32(is);
    tokens.emplace(std::move(token), id);
  }
  ds.token_vocab.restore(std::move(tokens), get_u8(is) != 0);

  std::map<graph::AnonWalk, std::uint32_t> walks;
  const std::uint64_t n_walks = get_len(is, kMaxVocab, "walk vocabulary");
  for (std::uint64_t i = 0; i < n_walks; ++i) {
    graph::AnonWalk walk(get_len(is, kMaxWalkLen, "anonymous walk"));
    const std::uint64_t off = offset_of(is);
    is.read(reinterpret_cast<char*>(walk.data()),
            static_cast<std::streamsize>(walk.size()));
    if (!is) fail_at(off, "truncated (walk)");
    const std::uint32_t id = get_u32(is);
    walks.emplace(std::move(walk), id);
  }
  ds.aw_vocab_table.restore(std::move(walks), get_u8(is) != 0);

  const std::uint64_t n_samples = get_len(is, kMaxSamples, "sample list");
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    ds.samples.push_back(get_sample(is));
  }
  return ds;
}

}  // namespace

void save_dataset(const Dataset& ds, std::ostream& os) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  io::Crc32OutStream crc_os(os);
  put_payload(crc_os, ds);
  crc_os.flush();
  put_u64(os, crc_os.bytes());
  put_u32(os, crc_os.crc());
  if (!os) throw std::runtime_error("dataset write failed");
}

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  save_dataset(ds, os);
}

Dataset load_dataset(std::istream& is) {
  if (get_u32(is) != kMagic) throw std::runtime_error("not a dataset file");
  const std::uint32_t version = get_u32(is);
  if (version != 1 && version != kVersion) {
    throw std::runtime_error("dataset version " + std::to_string(version) +
                             " unsupported (expected " +
                             std::to_string(kVersion) + ")");
  }
  io::Crc32InStream crc_is(is);
  Dataset ds = get_payload(crc_is);
  if (version == kVersion) {
    // Footer lives on the raw stream, right after the payload the wrapper
    // consumed byte-for-byte.
    const std::uint64_t off = offset_of(is);
    const std::uint64_t want_bytes = get_u64(is);
    const std::uint32_t want_crc = get_u32(is);
    if (crc_is.bytes() != want_bytes) {
      fail_at(off, "payload length mismatch: read " +
                       std::to_string(crc_is.bytes()) + " bytes, footer says " +
                       std::to_string(want_bytes));
    }
    if (crc_is.crc() != want_crc) {
      fail_at(off, "checksum mismatch: payload crc32 " +
                       std::to_string(crc_is.crc()) + ", footer says " +
                       std::to_string(want_crc));
    }
  }
  return ds;
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_dataset(is);
}

}  // namespace mvgnn::data
