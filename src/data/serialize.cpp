#include "data/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mvgnn::data {

namespace {

constexpr std::uint32_t kMagic = 0x4D56'4453;  // "MVDS"
constexpr std::uint32_t kVersion = 1;

// ---- primitive writers/readers ------------------------------------------

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_i32(std::ostream& os, std::int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_string(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void put_f32_vec(std::ostream& os, const std::vector<float>& v) {
  put_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dataset stream truncated (u32)");
  return v;
}
std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dataset stream truncated (u64)");
  return v;
}
std::int32_t get_i32(std::istream& is) {
  std::int32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dataset stream truncated (i32)");
  return v;
}
double get_f64(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dataset stream truncated (f64)");
  return v;
}
std::string get_string(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  if (n > (1u << 24)) throw std::runtime_error("dataset string too large");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("dataset stream truncated (string)");
  return s;
}
std::vector<float> get_f32_vec(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  if (n > (1u << 28)) throw std::runtime_error("dataset vector too large");
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("dataset stream truncated (f32 vec)");
  return v;
}

void put_sample(std::ostream& os, const GraphSample& s) {
  put_u32(os, s.n);
  put_u64(os, s.edges.size());
  for (std::size_t e = 0; e < s.edges.size(); ++e) {
    put_u32(os, s.edges[e].first);
    put_u32(os, s.edges[e].second);
    os.put(static_cast<char>(s.edge_kinds[e]));
  }
  put_u64(os, s.node_static.size());
  for (const auto& row : s.node_static) put_f32_vec(os, row);
  put_u64(os, s.node_dynamic.size());
  for (const auto& row : s.node_dynamic) {
    for (const double x : row) put_f64(os, x);
  }
  put_u64(os, s.aw_dist.size());
  for (const auto& row : s.aw_dist) put_f32_vec(os, row);
  for (const double x : s.loop_features) put_f64(os, x);
  put_u64(os, s.token_seq.size());
  for (const std::uint32_t t : s.token_seq) put_u32(os, t);
  put_i32(os, s.label);
  put_i32(os, s.pattern_label);
  os.put(static_cast<char>(s.tool_autopar));
  os.put(static_cast<char>(s.tool_pluto));
  os.put(static_cast<char>(s.tool_discopop));
  put_string(os, s.suite);
  put_string(os, s.app);
  put_string(os, s.kernel);
  put_string(os, s.variant);
  put_i32(os, s.loop_line);
}

GraphSample get_sample(std::istream& is) {
  GraphSample s;
  s.n = get_u32(is);
  const std::uint64_t n_edges = get_u64(is);
  for (std::uint64_t e = 0; e < n_edges; ++e) {
    const std::uint32_t a = get_u32(is);
    const std::uint32_t b = get_u32(is);
    s.edges.emplace_back(a, b);
    s.edge_kinds.push_back(static_cast<std::uint8_t>(is.get()));
  }
  s.node_static.resize(get_u64(is));
  for (auto& row : s.node_static) row = get_f32_vec(is);
  s.node_dynamic.resize(get_u64(is));
  for (auto& row : s.node_dynamic) {
    for (double& x : row) x = get_f64(is);
  }
  s.aw_dist.resize(get_u64(is));
  for (auto& row : s.aw_dist) row = get_f32_vec(is);
  for (double& x : s.loop_features) x = get_f64(is);
  s.token_seq.resize(get_u64(is));
  for (auto& t : s.token_seq) t = get_u32(is);
  s.label = get_i32(is);
  s.pattern_label = get_i32(is);
  s.tool_autopar = is.get() != 0;
  s.tool_pluto = is.get() != 0;
  s.tool_discopop = is.get() != 0;
  s.suite = get_string(is);
  s.app = get_string(is);
  s.kernel = get_string(is);
  s.variant = get_string(is);
  s.loop_line = get_i32(is);
  return s;
}

}  // namespace

void save_dataset(const Dataset& ds, std::ostream& os) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u32(os, ds.static_dim);
  put_u32(os, ds.aw_vocab);

  // inst2vec table.
  put_u32(os, ds.inst2vec.vocab_size());
  put_u32(os, ds.inst2vec.dim());
  for (std::uint32_t v = 0; v < ds.inst2vec.vocab_size(); ++v) {
    const auto row = ds.inst2vec.row(v);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(float)));
  }

  // Token vocabulary.
  put_u64(os, ds.token_vocab.map().size());
  for (const auto& [token, id] : ds.token_vocab.map()) {
    put_string(os, token);
    put_u32(os, id);
  }
  os.put(static_cast<char>(ds.token_vocab.frozen()));

  // Anonymous-walk vocabulary.
  put_u64(os, ds.aw_vocab_table.map().size());
  for (const auto& [walk, id] : ds.aw_vocab_table.map()) {
    put_u64(os, walk.size());
    os.write(reinterpret_cast<const char*>(walk.data()),
             static_cast<std::streamsize>(walk.size()));
    put_u32(os, id);
  }
  os.put(static_cast<char>(ds.aw_vocab_table.frozen()));

  // Samples.
  put_u64(os, ds.samples.size());
  for (const GraphSample& s : ds.samples) put_sample(os, s);

  if (!os) throw std::runtime_error("dataset write failed");
}

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  save_dataset(ds, os);
}

Dataset load_dataset(std::istream& is) {
  if (get_u32(is) != kMagic) throw std::runtime_error("not a dataset file");
  if (get_u32(is) != kVersion) {
    throw std::runtime_error("dataset version mismatch");
  }
  Dataset ds;
  ds.static_dim = get_u32(is);
  ds.aw_vocab = get_u32(is);

  const std::uint32_t i2v_vocab = get_u32(is);
  const std::uint32_t i2v_dim = get_u32(is);
  ds.inst2vec = embedding::EmbeddingTable(i2v_vocab, i2v_dim);
  for (std::uint32_t v = 0; v < i2v_vocab; ++v) {
    auto row = ds.inst2vec.row(v);
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!is) throw std::runtime_error("dataset stream truncated (inst2vec)");

  std::unordered_map<std::string, std::uint32_t> tokens;
  const std::uint64_t n_tokens = get_u64(is);
  for (std::uint64_t i = 0; i < n_tokens; ++i) {
    std::string token = get_string(is);
    const std::uint32_t id = get_u32(is);
    tokens.emplace(std::move(token), id);
  }
  ds.token_vocab.restore(std::move(tokens), is.get() != 0);

  std::map<graph::AnonWalk, std::uint32_t> walks;
  const std::uint64_t n_walks = get_u64(is);
  for (std::uint64_t i = 0; i < n_walks; ++i) {
    graph::AnonWalk walk(get_u64(is));
    is.read(reinterpret_cast<char*>(walk.data()),
            static_cast<std::streamsize>(walk.size()));
    const std::uint32_t id = get_u32(is);
    walks.emplace(std::move(walk), id);
  }
  ds.aw_vocab_table.restore(std::move(walks), is.get() != 0);

  const std::uint64_t n_samples = get_u64(is);
  ds.samples.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    ds.samples.push_back(get_sample(is));
  }
  if (!is) throw std::runtime_error("dataset stream truncated (samples)");
  return ds;
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_dataset(is);
}

}  // namespace mvgnn::data
