#include "data/kernels.hpp"

#include <cassert>
#include <sstream>

namespace mvgnn::data {

namespace {

using profiler::ArgInit;

/// Tiny source assembler with rng-backed variation helpers.
struct Src {
  std::ostringstream os;
  par::Rng& rng;

  explicit Src(par::Rng& r) : rng(r) {}

  Src& line(const std::string& s) {
    os << s << "\n";
    return *this;
  }
  [[nodiscard]] std::string str() const { return os.str(); }

  /// A problem size in [16, 64], multiple of 8 so halves stay integral.
  std::int64_t size() { return 16 + 8 * rng.uniform_int(0, 6); }
  /// A small 2-D edge length.
  std::int64_t size2d() { return 8 + 2 * rng.uniform_int(0, 4); }
  /// A float literal like "0.371".
  std::string weight() {
    std::ostringstream w;
    w << (0.05 + 0.9 * rng.uniform());
    return w.str();
  }
  /// One of the commutative float ops.
  std::string fop() {
    static const char* ops[] = {"+", "-", "*"};
    return ops[rng.uniform_u64(3)];
  }
  /// A pure unary builtin wrapper, sometimes identity.
  std::string wrap(const std::string& e) {
    switch (rng.uniform_int(0, 3)) {
      case 0: return "sqrt(fabs(" + e + "))";
      case 1: return "fabs(" + e + ")";
      default: return e;
    }
  }
};

std::string I(std::int64_t v) { return std::to_string(v); }

GenKernel finish(const std::string& name, const Src& src,
                 std::vector<ArgInit> args, int loops) {
  GenKernel k;
  k.name = name;
  k.source = src.str();
  k.args = std::move(args);
  k.for_loops = loops;
  return k;
}

// ---------------------------------------------------------------------------
// Pattern emitters. Every kernel's entry function is `kernel`.
// ---------------------------------------------------------------------------

GenKernel vec_map(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const std::string op = s.fop();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b, float[] c) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  if (rng.bernoulli(0.5)) {
    s.line("    c[i] = " + s.wrap("a[i]") + " " + op + " b[i];");
  } else {
    s.line("    c[i] = a[i] " + op + " b[i] * " + s.weight() + ";");
  }
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2),
                 ArgInit::of_array(n, 3)},
                1);
}

GenKernel vec_scale(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  if (rng.bernoulli(0.5)) {
    s.line("    a[i] = a[i] * " + s.weight() + ";");
  } else {
    s.line("    a[i] = a[i] + " + s.weight() + ";");
  }
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 1);
}

GenKernel saxpy(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] x, float[] y, float alpha) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    y[i] = y[i] + alpha * x[i];");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2),
                 ArgInit::of_float(1.0 + rng.uniform())},
                1);
}

GenKernel stencil_copy(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  for (int i = 1; i < N - 1; i += 1) {");
  s.line("    b[i] = " + s.weight() + " * a[i - 1] + " + s.weight() +
         " * a[i] + " + s.weight() + " * a[i + 1];");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel reduce_sum(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const bool squared = rng.bernoulli(0.5);
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a) {");
  s.line("  float s = 0.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line(squared ? "    s = s + a[i] * a[i];" : "    s = s + a[i];");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 1);
}

GenKernel reduce_max(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const bool use_min = rng.bernoulli(0.3);
  const std::string f = use_min ? "fmin" : "fmax";
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a) {");
  s.line(std::string("  float s = ") + (use_min ? "1000000.0;" : "-1000000.0;"));
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    s = " + f + "(s, a[i]);");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 1);
}

GenKernel dot_product(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a, float[] b) {");
  s.line("  float s = 0.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    s = s + a[i] * b[i];");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel priv_temp(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  float t = 0.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    t = a[i] * " + s.weight() + ";");
  s.line("    b[i] = t * t + t;");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel priv_array_temp(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const std::int64_t m = 4 + rng.uniform_int(0, 4);
  s.line("const int N = " + I(n) + ";");
  s.line("const int M = " + I(m) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  float t[M];");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    for (int j = 0; j < M; j += 1) {");
  s.line("      t[j] = a[i] * (" + s.weight() + " + (float) j);");
  s.line("    }");
  s.line("    float acc = 0.0;");
  s.line("    for (int j = 0; j < M; j += 1) {");
  s.line("      acc = acc + t[j];");
  s.line("    }");
  s.line("    b[i] = acc;");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                3);
}

GenKernel recurrence(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  for (int i = 1; i < N; i += 1) {");
  if (rng.bernoulli(0.5)) {
    s.line("    a[i] = a[i - 1] * " + s.weight() + " + b[i];");
  } else {
    s.line("    a[i] = a[i] + a[i - 1];");
  }
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel scalar_carried(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  float s = 0.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    s = s * " + s.weight() + " + a[i];");
  s.line("    b[i] = s;");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel cond_update_max(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a) {");
  s.line("  float s = -1000000.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    if (a[i] > s) {");
  s.line("      s = a[i];");
  s.line("    }");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 1);
}

GenKernel early_exit(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("int kernel(float[] a, float t) {");
  s.line("  int found = -1;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    if (a[i] > t) {");
  s.line("      found = i;");
  s.line("      break;");
  s.line("    }");
  s.line("  }");
  s.line("  return found;");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_float(1.45)}, 1);
}

GenKernel call_map_pure(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float helper(float x) {");
  if (rng.bernoulli(0.5)) {
    s.line("  return x * x + " + s.weight() + ";");
  } else {
    s.line("  float y = sqrt(fabs(x)) + " + s.weight() + ";");
    s.line("  return y * x;");
  }
  s.line("}");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    b[i] = helper(a[i]);");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel call_accum_shared(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void helper(float[] acc, float x) {");
  s.line("  acc[0] = acc[0] + x;");
  s.line("}");
  s.line("void kernel(float[] a, float[] acc) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    helper(acc, a[i]);");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(4, 2)},
                1);
}

GenKernel indirect_gather(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, int[] idx, float[] b) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    b[i] = a[idx[i]] * " + s.weight() + ";");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2),
                 ArgInit::of_array(n, 3)},
                1);
}

GenKernel indirect_histogram(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(int[] idx, float[] h) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    h[idx[i]] += 1.0;");
  s.line("  }");
  s.line("  float s = 0.0;");
  s.line("  for (int j = 0; j < N; j += 1) {");
  s.line("    s = s + h[j];");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                2);
}

GenKernel indirect_scatter(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(int[] idx, float[] a, float[] b) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    a[idx[i]] = b[i] + " + s.weight() + ";");
  s.line("  }");
  s.line("  float s = 0.0;");
  s.line("  for (int j = 0; j < N; j += 1) {");
  s.line("    s = s + a[j];");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2),
                 ArgInit::of_array(n, 3)},
                2);
}

GenKernel disjoint_copy(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto h = s.size();
  s.line("const int H = " + I(h) + ";");
  s.line("void kernel(float[] a) {");
  s.line("  for (int i = 0; i < H; i += 1) {");
  s.line("    a[i] = a[i + H] * " + s.weight() + ";");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(2 * h, 1)}, 1);
}

GenKernel matmul_nest(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] A, float[] B, float[] C) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    for (int j = 0; j < N; j += 1) {");
  s.line("      float acc = 0.0;");
  s.line("      for (int k = 0; k < N; k += 1) {");
  s.line("        acc = acc + A[i * N + k] * B[k * N + j];");
  s.line("      }");
  s.line("      C[i * N + j] = acc;");
  s.line("    }");
  s.line("  }");
  s.line("}");
  const auto sz = static_cast<std::uint64_t>(n * n);
  return finish(name, s,
                {ArgInit::of_array(sz, 1), ArgInit::of_array(sz, 2),
                 ArgInit::of_array(sz, 3)},
                3);
}

GenKernel jacobi2d(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  for (int i = 1; i < N - 1; i += 1) {");
  s.line("    for (int j = 1; j < N - 1; j += 1) {");
  s.line("      b[i * N + j] = 0.2 * (a[i * N + j] + a[(i - 1) * N + j]");
  s.line("          + a[(i + 1) * N + j] + a[i * N + j - 1] + a[i * N + j + 1]);");
  s.line("    }");
  s.line("  }");
  s.line("}");
  const auto sz = static_cast<std::uint64_t>(n * n);
  return finish(name, s, {ArgInit::of_array(sz, 1), ArgInit::of_array(sz, 2)},
                2);
}

GenKernel seidel2d(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  // Two flavours: the full Gauss-Seidel sweep (left + up neighbours) makes
  // both loops sequential; the vertical-only sweep leaves the inner row
  // loop parallel — a useful hard positive.
  const bool full_sweep = rng.bernoulli(0.6);
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a) {");
  s.line("  for (int i = 1; i < N - 1; i += 1) {");
  s.line("    for (int j = 1; j < N - 1; j += 1) {");
  if (full_sweep) {
    s.line("      a[i * N + j] = (a[i * N + j - 1] + a[i * N + j]");
    s.line("          + a[(i - 1) * N + j]) * 0.3333;");
  } else {
    s.line("      a[i * N + j] = (a[(i - 1) * N + j] + a[i * N + j]");
    s.line("          + a[(i + 1) * N + j]) * 0.3333;");
  }
  s.line("    }");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(static_cast<std::uint64_t>(n * n), 1)}, 2);
}

GenKernel triangular_update(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] L, float[] x) {");
  s.line("  for (int i = 1; i < N; i += 1) {");
  s.line("    for (int j = 0; j < i; j += 1) {");
  s.line("      x[i] = x[i] - L[i * N + j] * x[j];");
  s.line("    }");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(static_cast<std::uint64_t>(n * n), 1),
                 ArgInit::of_array(static_cast<std::uint64_t>(n), 2)},
                2);
}

GenKernel array_accum_nest(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] A, float[] B, float[] C, float alpha) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    for (int j = 0; j < N; j += 1) {");
  s.line("      for (int k = 0; k < N; k += 1) {");
  s.line("        C[i * N + j] += alpha * A[i * N + k] * B[j * N + k];");
  s.line("      }");
  s.line("    }");
  s.line("  }");
  s.line("}");
  const auto sz = static_cast<std::uint64_t>(n * n);
  return finish(name, s,
                {ArgInit::of_array(sz, 1), ArgInit::of_array(sz, 2),
                 ArgInit::of_array(sz, 3), ArgInit::of_float(0.5)},
                3);
}

GenKernel cold_path(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const bool cold_is_parallel = rng.bernoulli(0.7);
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] a, float[] b, int flag) {");
  s.line("  if (flag > 0) {");
  s.line("    for (int i = 1; i < N; i += 1) {");
  if (cold_is_parallel) {
    s.line("      b[i] = a[i] * " + s.weight() + ";");
  } else {
    s.line("      b[i] = b[i - 1] + a[i];");
  }
  s.line("    }");
  s.line("  }");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    b[i] = a[i] + " + s.weight() + ";");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2),
                 ArgInit::of_int(0)},
                2);
}

GenKernel while_wrapped(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a, float[] b) {");
  s.line("  float err = 1000.0;");
  s.line("  int iter = 0;");
  s.line("  while (err > 1.0 && iter < 6) {");
  s.line("    err = 0.0;");
  s.line("    for (int i = 0; i < N; i += 1) {");
  s.line("      b[i] = 0.5 * (a[i] + b[i]);");
  s.line("      err = err + fabs(a[i] - b[i]);");
  s.line("    }");
  s.line("    iter = iter + 1;");
  s.line("  }");
  s.line("  return err;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel fib_driver(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const std::int64_t k = 10 + rng.uniform_int(0, 4);
  s.line("const int K = " + I(k) + ";");
  s.line("int fib(int n) {");
  s.line("  if (n < 2) {");
  s.line("    return n;");
  s.line("  }");
  s.line("  return fib(n - 1) + fib(n - 2);");
  s.line("}");
  s.line("void kernel(int[] r) {");
  s.line("  for (int i = 0; i < K; i += 1) {");
  s.line("    r[i] = 0;");
  s.line("  }");
  s.line("  for (int i = 0; i < K; i += 1) {");
  s.line("    r[i] = fib(i % 10 + 3);");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(static_cast<std::uint64_t>(k), 1)},
                2);
}

GenKernel nqueens_style(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const std::int64_t q = 5 + rng.uniform_int(0, 1);  // 5 or 6 queens
  s.line("const int Q = " + I(q) + ";");
  s.line("int place(int[] board, int row) {");
  s.line("  if (row == Q) {");
  s.line("    return 1;");
  s.line("  }");
  s.line("  int count = 0;");
  s.line("  for (int c = 0; c < Q; c += 1) {");
  s.line("    int ok = 1;");
  s.line("    for (int r = 0; r < row; r += 1) {");
  s.line("      if (board[r] == c || iabs(board[r] - c) == row - r) {");
  s.line("        ok = 0;");
  s.line("      }");
  s.line("    }");
  s.line("    if (ok == 1) {");
  s.line("      board[row] = c;");
  s.line("      count = count + place(board, row + 1);");
  s.line("    }");
  s.line("  }");
  s.line("  return count;");
  s.line("}");
  s.line("int kernel(int[] board) {");
  s.line("  for (int i = 0; i < Q; i += 1) {");
  s.line("    board[i] = -1;");
  s.line("  }");
  s.line("  int total = 0;");
  s.line("  for (int i = 0; i < Q; i += 1) {");
  s.line("    board[0] = i;");
  s.line("    total = total + place(board, 1);");
  s.line("  }");
  s.line("  return total;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(static_cast<std::uint64_t>(q), 1)},
                4);
}

GenKernel checksum_only(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a) {");
  s.line("  float s = 0.0;");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    s = s + a[i] * " + s.weight() + ";");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 1);
}

GenKernel offset_stencil(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  // Half the instances are the OFF=0 (parallel) flavour so a token-only
  // model faces a genuine coin flip on this template.
  static const std::int64_t offs[] = {0, 0, 0, 0, 1, -1, 2, -2};
  const std::int64_t off = offs[rng.uniform_u64(std::size(offs))];
  // Identical token stream for every OFF; only the dependence distance
  // changes. The trailing checksum makes `a` live-out so non-zero offsets
  // are genuinely order-dependent.
  s.line("const int N = " + I(n) + ";");
  s.line("const int OFF = " + I(off) + ";");
  s.line("float kernel(float[] a) {");
  s.line("  for (int i = 2; i < N - 2; i += 1) {");
  s.line("    a[i] = a[i + OFF] * " + s.weight() + " + 0.01;");
  s.line("  }");
  s.line("  float s = 0.0;");
  s.line("  for (int j = 0; j < N; j += 1) {");
  s.line("    s = s + a[j];");
  s.line("  }");
  s.line("  return s;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1)}, 2);
}

GenKernel offset_recurrence(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  static const std::int64_t ks[] = {0, 0, 0, 1, 1, 2};
  const std::int64_t k = ks[rng.uniform_u64(std::size(ks))];
  s.line("const int N = " + I(n) + ";");
  s.line("const int K = " + I(k) + ";");
  s.line("void kernel(float[] a, float[] b) {");
  s.line("  for (int i = 2; i < N; i += 1) {");
  s.line("    a[i] = a[i - K] * " + s.weight() + " + b[i];");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                1);
}

GenKernel param_offset(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  // The offset is a runtime argument: token stream, static analysis and
  // graph topology are identical across instances — only the dynamic
  // dependence profile reveals whether the loop is parallelizable.
  static const std::int64_t svals[] = {0, 0, 0, 1, 2, 1};
  const std::int64_t sval = svals[rng.uniform_u64(std::size(svals))];
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a, int s) {");
  s.line("  for (int i = 0; i < N - 2; i += 1) {");
  s.line("    a[i] = a[i + s] * " + s.weight() + " + 0.02;");
  s.line("  }");
  s.line("  float c = 0.0;");
  s.line("  for (int j = 0; j < N; j += 1) {");
  s.line("    c = c + a[j];");
  s.line("  }");
  s.line("  return c;");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_int(sval)}, 2);
}

GenKernel spmv(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const std::int64_t rows = 8 + 2 * rng.uniform_int(0, 4);
  const std::int64_t nnz_per_row = 4;
  const std::int64_t nnz = rows * nnz_per_row;
  // CSR with a fixed row width keeps the row_ptr arithmetic affine while the
  // column indices stay data-dependent — the real SpMV situation.
  s.line("const int ROWS = " + I(rows) + ";");
  s.line("const int W = " + I(nnz_per_row) + ";");
  s.line("void kernel(float[] val, int[] col, float[] x, float[] y) {");
  s.line("  for (int r = 0; r < ROWS; r += 1) {");
  s.line("    float acc = 0.0;");
  s.line("    for (int k = r * W; k < r * W + W; k += 1) {");
  s.line("      acc = acc + val[k] * x[col[k]];");
  s.line("    }");
  s.line("    y[r] = acc;");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(static_cast<std::uint64_t>(nnz), 1),
                 ArgInit::of_array(static_cast<std::uint64_t>(nnz), 2),
                 ArgInit::of_array(static_cast<std::uint64_t>(nnz), 3),
                 ArgInit::of_array(static_cast<std::uint64_t>(rows), 4)},
                2);
}

GenKernel transpose(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] A, float[] B) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    for (int j = 0; j < N; j += 1) {");
  s.line("      B[j * N + i] = A[i * N + j];");
  s.line("    }");
  s.line("  }");
  s.line("}");
  const auto sz = static_cast<std::uint64_t>(n * n);
  return finish(name, s, {ArgInit::of_array(sz, 1), ArgInit::of_array(sz, 2)},
                2);
}

GenKernel separable_stencil(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size2d();
  // Row sweep is parallel over rows but sequential inside each row (a
  // running IIR filter); the column sweep mirrors it — a realistic mix of
  // parallel and sequential loops over the same grid.
  s.line("const int N = " + I(n) + ";");
  s.line("void kernel(float[] g) {");
  s.line("  for (int i = 0; i < N; i += 1) {");
  s.line("    for (int j = 1; j < N; j += 1) {");
  s.line("      g[i * N + j] = g[i * N + j] * 0.6 + g[i * N + j - 1] * 0.4;");
  s.line("    }");
  s.line("  }");
  s.line("  for (int j = 0; j < N; j += 1) {");
  s.line("    for (int i = 1; i < N; i += 1) {");
  s.line("      g[i * N + j] = g[i * N + j] * 0.6 + g[(i - 1) * N + j] * 0.4;");
  s.line("    }");
  s.line("  }");
  s.line("}");
  return finish(name, s,
                {ArgInit::of_array(static_cast<std::uint64_t>(n * n), 1)}, 4);
}

GenKernel pipeline3(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  s.line("const int N = " + I(n) + ";");
  s.line("float kernel(float[] a, float[] b) {");
  // Scalars some stages need, declared up front like real code.
  s.line("  float acc = 0.0;");
  s.line("  float top = -1000000.0;");
  s.line("  float run = 0.0;");
  // Three stages drawn independently; they share a and b, so each loop sees
  // realistic incoming/outgoing dependences from its neighbours.
  for (int stage = 0; stage < 3; ++stage) {
    switch (rng.uniform_int(0, 6)) {
      case 0:  // map a -> b
        s.line("  for (int i = 0; i < N; i += 1) {");
        s.line("    b[i] = " + s.wrap("a[i]") + " + " + s.weight() + ";");
        s.line("  }");
        break;
      case 1:  // in-place scale of b
        s.line("  for (int i = 0; i < N; i += 1) {");
        s.line("    b[i] = b[i] * " + s.weight() + ";");
        s.line("  }");
        break;
      case 2:  // stencil b -> a (out of place)
        s.line("  for (int i = 1; i < N - 1; i += 1) {");
        s.line("    a[i] = " + s.weight() + " * (b[i - 1] + b[i + 1]);");
        s.line("  }");
        break;
      case 3:  // sum reduction over b
        s.line("  for (int i = 0; i < N; i += 1) {");
        s.line("    acc = acc + b[i];");
        s.line("  }");
        break;
      case 4:  // max reduction over b
        s.line("  for (int i = 0; i < N; i += 1) {");
        s.line("    top = fmax(top, b[i]);");
        s.line("  }");
        break;
      case 5:  // forward recurrence on b
        s.line("  for (int i = 1; i < N; i += 1) {");
        s.line("    b[i] = b[i] + b[i - 1] * " + s.weight() + ";");
        s.line("  }");
        break;
      default:  // carried scalar chain into b
        s.line("  for (int i = 0; i < N; i += 1) {");
        s.line("    run = run * " + s.weight() + " + a[i];");
        s.line("    b[i] = run;");
        s.line("  }");
        break;
    }
  }
  s.line("  return acc + top + run + b[N - 1];");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                3);
}

GenKernel timestepped(const std::string& name, par::Rng& rng) {
  Src s(rng);
  const auto n = s.size();
  const std::int64_t steps = 3 + rng.uniform_int(0, 5);
  s.line("const int N = " + I(n) + ";");
  s.line("const int STEPS = " + I(steps) + ";");
  s.line("void kernel(float[] u, float[] tmp) {");
  s.line("  for (int t = 0; t < STEPS; t += 1) {");
  s.line("    for (int i = 1; i < N - 1; i += 1) {");
  s.line("      tmp[i] = u[i] + " + s.weight() +
         " * (u[i - 1] - 2.0 * u[i] + u[i + 1]);");
  s.line("    }");
  s.line("    for (int i = 1; i < N - 1; i += 1) {");
  s.line("      u[i] = tmp[i];");
  s.line("    }");
  s.line("  }");
  s.line("}");
  return finish(name, s, {ArgInit::of_array(n, 1), ArgInit::of_array(n, 2)},
                3);
}

}  // namespace

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::VecMap: return "vec_map";
    case Pattern::VecScaleInPlace: return "vec_scale";
    case Pattern::Saxpy: return "saxpy";
    case Pattern::StencilCopy: return "stencil_copy";
    case Pattern::ReduceSum: return "reduce_sum";
    case Pattern::ReduceMax: return "reduce_max";
    case Pattern::DotProduct: return "dot_product";
    case Pattern::PrivTemp: return "priv_temp";
    case Pattern::PrivArrayTemp: return "priv_array_temp";
    case Pattern::Recurrence: return "recurrence";
    case Pattern::ScalarCarried: return "scalar_carried";
    case Pattern::CondUpdateMax: return "cond_update_max";
    case Pattern::EarlyExit: return "early_exit";
    case Pattern::CallMapPure: return "call_map_pure";
    case Pattern::CallAccumShared: return "call_accum_shared";
    case Pattern::IndirectGather: return "indirect_gather";
    case Pattern::IndirectHistogram: return "indirect_histogram";
    case Pattern::IndirectScatter: return "indirect_scatter";
    case Pattern::DisjointCopy: return "disjoint_copy";
    case Pattern::MatMulNest: return "matmul_nest";
    case Pattern::Jacobi2D: return "jacobi2d";
    case Pattern::Seidel2D: return "seidel2d";
    case Pattern::TriangularUpdate: return "triangular";
    case Pattern::ArrayAccumNest: return "array_accum_nest";
    case Pattern::ColdPath: return "cold_path";
    case Pattern::WhileWrapped: return "while_wrapped";
    case Pattern::FibDriver: return "fib_driver";
    case Pattern::NQueensStyle: return "nqueens_style";
    case Pattern::ChecksumOnly: return "checksum_only";
    case Pattern::OffsetStencil: return "offset_stencil";
    case Pattern::ParamOffset: return "param_offset";
    case Pattern::SpMV: return "spmv";
    case Pattern::Transpose: return "transpose";
    case Pattern::SeparableStencil: return "separable_stencil";
    case Pattern::Pipeline3: return "pipeline3";
    case Pattern::Timestepped: return "timestepped";
    case Pattern::OffsetRecurrence: return "offset_recurrence";
  }
  return "?";
}

int pattern_loops(Pattern p) {
  switch (p) {
    case Pattern::PrivArrayTemp: return 3;
    case Pattern::IndirectHistogram:
    case Pattern::IndirectScatter:
    case Pattern::Jacobi2D:
    case Pattern::Seidel2D:
    case Pattern::TriangularUpdate:
    case Pattern::ColdPath:
    case Pattern::FibDriver:
      return 2;
    case Pattern::MatMulNest:
    case Pattern::ArrayAccumNest:
      return 3;
    case Pattern::NQueensStyle:
      return 4;
    case Pattern::OffsetStencil:
    case Pattern::ParamOffset:
    case Pattern::SpMV:
    case Pattern::Transpose:
      return 2;
    case Pattern::SeparableStencil:
      return 4;
    case Pattern::Pipeline3:
    case Pattern::Timestepped:
      return 3;
    default:
      return 1;
  }
}

GenKernel generate_kernel(Pattern p, const std::string& name, par::Rng& rng) {
  GenKernel k;
  switch (p) {
    case Pattern::VecMap: k = vec_map(name, rng); break;
    case Pattern::VecScaleInPlace: k = vec_scale(name, rng); break;
    case Pattern::Saxpy: k = saxpy(name, rng); break;
    case Pattern::StencilCopy: k = stencil_copy(name, rng); break;
    case Pattern::ReduceSum: k = reduce_sum(name, rng); break;
    case Pattern::ReduceMax: k = reduce_max(name, rng); break;
    case Pattern::DotProduct: k = dot_product(name, rng); break;
    case Pattern::PrivTemp: k = priv_temp(name, rng); break;
    case Pattern::PrivArrayTemp: k = priv_array_temp(name, rng); break;
    case Pattern::Recurrence: k = recurrence(name, rng); break;
    case Pattern::ScalarCarried: k = scalar_carried(name, rng); break;
    case Pattern::CondUpdateMax: k = cond_update_max(name, rng); break;
    case Pattern::EarlyExit: k = early_exit(name, rng); break;
    case Pattern::CallMapPure: k = call_map_pure(name, rng); break;
    case Pattern::CallAccumShared: k = call_accum_shared(name, rng); break;
    case Pattern::IndirectGather: k = indirect_gather(name, rng); break;
    case Pattern::IndirectHistogram: k = indirect_histogram(name, rng); break;
    case Pattern::IndirectScatter: k = indirect_scatter(name, rng); break;
    case Pattern::DisjointCopy: k = disjoint_copy(name, rng); break;
    case Pattern::MatMulNest: k = matmul_nest(name, rng); break;
    case Pattern::Jacobi2D: k = jacobi2d(name, rng); break;
    case Pattern::Seidel2D: k = seidel2d(name, rng); break;
    case Pattern::TriangularUpdate: k = triangular_update(name, rng); break;
    case Pattern::ArrayAccumNest: k = array_accum_nest(name, rng); break;
    case Pattern::ColdPath: k = cold_path(name, rng); break;
    case Pattern::WhileWrapped: k = while_wrapped(name, rng); break;
    case Pattern::FibDriver: k = fib_driver(name, rng); break;
    case Pattern::NQueensStyle: k = nqueens_style(name, rng); break;
    case Pattern::ChecksumOnly: k = checksum_only(name, rng); break;
    case Pattern::OffsetStencil: k = offset_stencil(name, rng); break;
    case Pattern::ParamOffset: k = param_offset(name, rng); break;
    case Pattern::SpMV: k = spmv(name, rng); break;
    case Pattern::Transpose: k = transpose(name, rng); break;
    case Pattern::SeparableStencil: k = separable_stencil(name, rng); break;
    case Pattern::Pipeline3: k = pipeline3(name, rng); break;
    case Pattern::Timestepped: k = timestepped(name, rng); break;
    case Pattern::OffsetRecurrence: k = offset_recurrence(name, rng); break;
  }
  assert(k.for_loops == pattern_loops(p));
  return k;
}

}  // namespace mvgnn::data
