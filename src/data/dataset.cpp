#include "data/dataset.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "analysis/tools.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "frontend/lower.hpp"
#include "graph/peg.hpp"
#include "profiler/profile.hpp"
#include "transform/passes.hpp"

namespace mvgnn::data {

namespace {

/// One compiled+profiled program variant held during dataset construction.
struct Built {
  const ProgramSpec* spec = nullptr;
  std::string variant;
  ir::Module module;
  profiler::ProfileResult prof;        // clean: labels + tool verdicts
  profiler::ProfileResult noisy_prof;  // degraded: model-visible features
  graph::Peg peg;                      // built from the degraded profile
};

/// Simulates input sensitivity: drops aggregated dependence edges with
/// probability `p`. Loop runtime, CU structure and object tables stay.
profiler::ProfileResult degrade_profile(const profiler::ProfileResult& prof,
                                        double p, par::Rng& rng) {
  profiler::ProfileResult out = prof;
  if (p <= 0.0) return out;
  std::erase_if(out.dep.edges, [&](const profiler::DepEdge&) {
    return rng.uniform() < p;
  });
  return out;
}

/// log1p squashing for count-like dynamic features (exec counts span many
/// orders of magnitude; GCNs want tame inputs).
std::array<double, 7> squash(const profiler::LoopFeatures& f) {
  const auto v = f.as_vector();
  std::array<double, 7> out{};
  out[0] = std::log1p(v[0]);  // n_inst
  out[1] = std::log1p(v[1]);  // exec_times
  out[2] = std::log1p(v[2]);  // cfl
  out[3] = v[3];              // esp (already a small ratio)
  out[4] = std::log1p(v[4]);  // incoming
  out[5] = std::log1p(v[5]);  // internal
  out[6] = std::log1p(v[6]);  // outgoing
  return out;
}


/// Sparse anonymous-walk ids per node of one sample (densified by the
/// caller once the vocabulary size is final).
using AwIds = std::vector<std::vector<std::uint32_t>>;

struct BuiltSamples {
  std::vector<GraphSample> samples;
  std::vector<AwIds> aw_ids;  // parallel to samples
};

/// Shared sample-construction core: one GraphSample per for-loop of `b`,
/// using (and, when `grow`, extending) the dataset's vocabularies and
/// inst2vec table. Does NOT densify the AW distributions.
BuiltSamples samples_of_built(const Built& b, Dataset& ds,
                              const DatasetOptions& opts, bool grow,
                              par::Rng& walk_rng) {
  BuiltSamples out;
  const std::uint32_t i2v_dim = ds.inst2vec.dim();
  const std::uint32_t kind_dims = 3;  // CU / Loop / Function one-hot

  // Per-loop dynamic features for every loop in the module (loop nodes of
  // inner loops need them too). Model-visible features come from the
  // degraded profile.
  std::unordered_map<const ir::Function*, std::vector<profiler::LoopFeatures>>
      loop_feats;
  for (const auto& fn : b.module.functions) {
    auto& v = loop_feats[fn.get()];
    v.reserve(fn->loops.size());
    for (const ir::LoopInfo& l : fn->loops) {
      v.push_back(
          profiler::compute_loop_features(*fn, l.id, b.noisy_prof.dep));
    }
  }

  // Token ids per instruction (for node static embeddings).
  std::unordered_map<const ir::Function*, std::vector<std::uint32_t>> toks;
  for (const auto& fn : b.module.functions) {
    auto& t = toks[fn.get()];
    t.reserve(fn->instrs.size());
    for (const ir::Instruction& in : fn->instrs) {
      t.push_back(ds.token_vocab.id_of(embedding::normalize(in), grow));
    }
  }

  for (const profiler::LoopSample& ls : b.prof.loops) {
    const graph::SubPeg sub = graph::extract_sub_peg(b.peg, ls.fn, ls.loop);
    GraphSample s;
    s.n = static_cast<std::uint32_t>(sub.num_nodes());
    for (const graph::PegEdge& e : sub.edges) {
      s.edges.emplace_back(e.src, e.dst);
      if (e.kind == graph::EdgeKind::Hierarchy) {
        s.edge_kinds.push_back(0);
      } else {
        switch (e.dep) {
          case profiler::DepType::RAW: s.edge_kinds.push_back(1); break;
          case profiler::DepType::WAR: s.edge_kinds.push_back(2); break;
          case profiler::DepType::WAW: s.edge_kinds.push_back(3); break;
        }
      }
    }

    // Node features.
    s.node_static.resize(s.n);
    s.node_dynamic.resize(s.n);
    for (std::uint32_t k = 0; k < s.n; ++k) {
      const graph::PegNode& node = b.peg.nodes[sub.nodes[k]];
      std::vector<std::uint32_t> node_tokens;
      profiler::LoopFeatures dyn;
      if (node.kind == graph::NodeKind::CU) {
        const profiler::CU& cu = b.peg.cus[node.cu];
        for (const ir::InstrId id : cu.instrs) {
          node_tokens.push_back(toks[node.fn][id]);
        }
        if (node.loop != ir::kNoLoop) {
          dyn = loop_feats[node.fn][node.loop];
        }
        // A CU's own cost signal: mean execution count of its members.
        std::uint64_t total = 0;
        for (const ir::InstrId id : cu.instrs) {
          total += b.prof.dep.exec_count(node.fn, id);
        }
        dyn.exec_times = cu.instrs.empty() ? 0 : total / cu.instrs.size();
      } else if (node.kind == graph::NodeKind::Loop) {
        for (ir::InstrId id = 0; id < node.fn->instrs.size(); ++id) {
          if (profiler::instr_in_loop(*node.fn, id, node.loop)) {
            node_tokens.push_back(toks[node.fn][id]);
          }
        }
        dyn = loop_feats[node.fn][node.loop];
        if (k == 0) s.token_seq = node_tokens;  // root loop body sequence
      }
      std::vector<float> st = ds.inst2vec.mean_of(node_tokens);
      st.resize(ds.static_dim, 0.0f);
      st[i2v_dim + static_cast<std::uint32_t>(node.kind)] = 1.0f;
      st[i2v_dim + kind_dims] =
          std::log1p(static_cast<float>(node_tokens.size()));
      s.node_static[k] = std::move(st);
      s.node_dynamic[k] = squash(dyn);
    }

    // Structural view: sample walks, keep sparse ids.
    graph::WalkGraph wg(s.n);
    for (const auto& [a, bb] : s.edges) wg.add_edge(a, bb);
    AwIds ids_per_node(s.n);
    for (std::uint32_t k = 0; k < s.n; ++k) {
      const auto dist = graph::node_aw_distribution(
          wg, k, opts.walk, ds.aw_vocab_table, grow, walk_rng);
      std::vector<std::uint32_t> ids;
      for (std::uint32_t id = 0; id < dist.size(); ++id) {
        const auto cnt = static_cast<std::uint32_t>(
            std::lround(dist[id] * opts.walk.gamma));
        for (std::uint32_t c = 0; c < cnt; ++c) ids.push_back(id);
      }
      ids_per_node[k] = std::move(ids);
    }
    out.aw_ids.push_back(std::move(ids_per_node));

    // Labels, baselines, provenance. Labels and tool verdicts use the
    // clean profile; the stored hand-crafted features are the degraded
    // ones (what a real profiling run would have produced).
    s.loop_features = squash(loop_feats[ls.fn][ls.loop]);
    s.label =
        analysis::oracle_classify(*ls.fn, ls.loop, b.prof.dep).parallel ? 1
                                                                        : 0;
    s.pattern_label = static_cast<int>(
        analysis::oracle_pattern(*ls.fn, ls.loop, b.prof.dep));
    s.tool_autopar = analysis::autopar_classify(*ls.fn, ls.loop).parallel;
    s.tool_pluto = analysis::pluto_classify(*ls.fn, ls.loop).parallel;
    s.tool_discopop =
        analysis::discopop_classify(*ls.fn, ls.loop, b.prof.dep).parallel;
    s.suite = b.spec->suite;
    s.app = b.spec->app;
    s.kernel = b.spec->kernel.name;
    s.variant = b.variant;
    s.loop_line = ls.fn->loops[ls.loop].start_line;
    out.samples.push_back(std::move(s));
  }
  return out;
}

/// Densifies one sample's AW distribution over `vocab_size` slots.
void densify_aw(GraphSample& s, const AwIds& ids, std::uint32_t vocab_size) {
  s.aw_dist.resize(s.n);
  for (std::uint32_t k = 0; k < s.n; ++k) {
    std::vector<float> d(vocab_size, 0.0f);
    if (!ids[k].empty()) {
      const float inv = 1.0f / static_cast<float>(ids[k].size());
      for (const std::uint32_t id : ids[k]) d[id] += inv;
    }
    s.aw_dist[k] = std::move(d);
  }
}

}  // namespace

std::vector<std::size_t> Dataset::suite_indices(const std::string& suite) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (suite.empty() || samples[i].suite == suite) out.push_back(i);
  }
  return out;
}

Dataset build_dataset(const std::vector<ProgramSpec>& programs,
                      const DatasetOptions& opts, std::size_t* skipped,
                      BuildReport* report) {
  Dataset ds;

  // Quarantine: a per-sample failure is recorded and skipped, never fatal.
  // Workers from the parallel compile/profile phase funnel through one
  // mutex; the hot path never takes it.
  std::mutex quarantine_mu;
  BuildReport local_report;
  auto quarantine = [&](const std::string& kernel, const std::string& variant,
                        const char* stage, const char* error) {
    obs::Registry::global().counter("corpus.quarantined_total").add(1);
    obs::log_warn("quarantined corpus program", {{"kernel", kernel},
                                                 {"variant", variant},
                                                 {"stage", stage},
                                                 {"error", error}});
    std::lock_guard<std::mutex> lock(quarantine_mu);
    local_report.quarantined.push_back(
        QuarantineEntry{kernel, variant, stage, error});
  };

  // ---- Phase 1: compile (with variants) and profile --------------------
  // Every (program, variant) item is independent, so this fans out over the
  // global thread pool; results are collected in item order and each item
  // derives its own noise stream from its index, keeping the dataset
  // bit-identical regardless of scheduling.
  const auto& pipelines = transform::variant_pipelines();
  const std::size_t n_variants = opts.use_ir_variants ? pipelines.size() : 1;
  const std::size_t n_items = programs.size() * n_variants;
  std::vector<std::unique_ptr<Built>> slots(n_items);
  par::parallel_for(
      0, n_items,
      [&](std::size_t item) {
        const ProgramSpec& spec = programs[item / n_variants];
        const std::size_t v = item % n_variants;
        auto b = std::make_unique<Built>();
        b->spec = &spec;
        const char* stage = "compile";
        try {
          b->module = frontend::compile(spec.kernel.source, spec.kernel.name);
          if (opts.use_ir_variants) {
            transform::run_pipeline(b->module, pipelines[v]);
            b->variant = pipelines[v].name;
          }
          stage = "profile";
          b->prof = profiler::profile(b->module, "kernel", spec.kernel.args,
                                      opts.interp);
          stage = "featurize";
          par::Rng noise_rng(opts.seed ^ (0x0DE9'0A0DULL + item * 0x9E37ULL));
          b->noisy_prof = degrade_profile(b->prof, opts.dep_noise, noise_rng);
          b->peg = graph::build_peg(b->module, b->noisy_prof);
        } catch (const std::exception& e) {
          quarantine(spec.kernel.name, b->variant, stage, e.what());
          return;
        }
        slots[item] = std::move(b);
      },
      par::ThreadPool::global(), /*grain=*/1);
  std::vector<Built> built;
  built.reserve(n_items);
  for (auto& slot : slots) {
    if (slot) built.push_back(std::move(*slot));
  }
  slots.clear();

  // ---- Phase 2: train the inst2vec embedding over the whole corpus -----
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const Built& b : built) {
    for (const auto& fn : b.module.functions) {
      auto p = embedding::context_pairs(*fn, ds.token_vocab, /*grow=*/true);
      pairs.insert(pairs.end(), p.begin(), p.end());
    }
  }
  ds.token_vocab.freeze();
  embedding::SkipGramParams sg;
  sg.dim = opts.inst2vec_dim;
  sg.epochs = opts.skipgram_epochs;
  par::Rng sg_rng(opts.seed ^ 0x5EEDULL);
  ds.inst2vec = embedding::train_skipgram(ds.token_vocab.size(), pairs, sg,
                                          sg_rng);

  // ---- Phase 3: one sample per for-loop --------------------------------
  // Anonymous-walk ids are collected sparse first (the vocabulary grows
  // while sampling); distributions are densified after the freeze.
  std::vector<AwIds> pending_ids;
  par::Rng walk_rng(opts.seed ^ 0xA110C8ULL);

  const std::uint32_t kind_dims = 3;  // CU / Loop / Function one-hot
  ds.static_dim = opts.inst2vec_dim + kind_dims + 1;

  for (const Built& b : built) {
    try {
      BuiltSamples bs = samples_of_built(b, ds, opts, /*grow=*/true, walk_rng);
      for (std::size_t i = 0; i < bs.samples.size(); ++i) {
        ds.samples.push_back(std::move(bs.samples[i]));
        pending_ids.push_back(std::move(bs.aw_ids[i]));
      }
    } catch (const std::exception& e) {
      quarantine(b.spec->kernel.name, b.variant, "featurize", e.what());
    }
  }

  // ---- Phase 4: freeze the AW vocabulary and densify -------------------
  ds.aw_vocab_table.freeze();
  ds.aw_vocab = ds.aw_vocab_table.size();
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    densify_aw(ds.samples[i], pending_ids[i], ds.aw_vocab);
  }

  if (skipped) *skipped = local_report.quarantined.size();
  if (report) *report = std::move(local_report);
  return ds;
}

std::vector<GraphSample> featurize_program(const ProgramSpec& program,
                                            const Dataset& reference,
                                            const DatasetOptions& opts) {
  Built b;
  b.spec = &program;
  b.module = frontend::compile(program.kernel.source, program.kernel.name);
  b.prof = profiler::profile(b.module, "kernel", program.kernel.args,
                             opts.interp);
  par::Rng noise_rng(opts.seed ^ 0xF007'0A0DULL);
  b.noisy_prof = degrade_profile(b.prof, opts.dep_noise, noise_rng);
  b.peg = graph::build_peg(b.module, b.noisy_prof);

  // The vocabularies are frozen, so grow=false cannot mutate them; the
  // const_cast only satisfies the shared helper's signature.
  Dataset& ref = const_cast<Dataset&>(reference);
  par::Rng walk_rng(opts.seed ^ 0xF00D'C8ULL);
  BuiltSamples bs =
      samples_of_built(b, ref, opts, /*grow=*/false, walk_rng);
  for (std::size_t i = 0; i < bs.samples.size(); ++i) {
    densify_aw(bs.samples[i], bs.aw_ids[i], reference.aw_vocab);
  }
  return std::move(bs.samples);
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_kernel(
    const Dataset& ds, double train_fraction, std::uint64_t seed) {
  // Stable kernel list in first-appearance order.
  std::vector<std::string> kernels;
  for (const GraphSample& s : ds.samples) {
    if (std::find(kernels.begin(), kernels.end(), s.kernel) == kernels.end()) {
      kernels.push_back(s.kernel);
    }
  }
  par::Rng rng(seed);
  std::shuffle(kernels.begin(), kernels.end(), rng.engine());
  const std::size_t n_train = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(kernels.size())));
  std::vector<std::string> train_kernels(kernels.begin(),
                                         kernels.begin() + n_train);

  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    const bool in_train =
        std::find(train_kernels.begin(), train_kernels.end(),
                  ds.samples[i].kernel) != train_kernels.end();
    (in_train ? out.first : out.second).push_back(i);
  }
  return out;
}

std::vector<std::size_t> balance_classes(const Dataset& ds,
                                         const std::vector<std::size_t>& idx,
                                         std::uint64_t seed) {
  std::vector<std::size_t> pos, neg;
  for (const std::size_t i : idx) {
    (ds.samples[i].label ? pos : neg).push_back(i);
  }
  par::Rng rng(seed);
  std::shuffle(pos.begin(), pos.end(), rng.engine());
  std::shuffle(neg.begin(), neg.end(), rng.engine());
  const std::size_t n = std::min(pos.size(), neg.size());
  std::vector<std::size_t> out;
  out.reserve(2 * n);
  out.insert(out.end(), pos.begin(), pos.begin() + n);
  out.insert(out.end(), neg.begin(), neg.begin() + n);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> oversample_balance(
    const Dataset& ds, const std::vector<std::size_t>& idx,
    std::uint64_t seed) {
  std::vector<std::size_t> pos, neg;
  for (const std::size_t i : idx) {
    (ds.samples[i].label ? pos : neg).push_back(i);
  }
  if (pos.empty() || neg.empty()) return idx;
  par::Rng rng(seed ^ 0x05E2ULL);
  std::vector<std::size_t>& minority = pos.size() < neg.size() ? pos : neg;
  const std::size_t target = std::max(pos.size(), neg.size());
  std::vector<std::size_t> out = idx;
  while (minority.size() < target) {
    const std::size_t pick = minority[rng.uniform_u64(minority.size())];
    out.push_back(pick);
    minority.push_back(pick);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mvgnn::data
