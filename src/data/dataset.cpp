#include "data/dataset.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>

#include "cache/cache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "pipe/item.hpp"
#include "transform/passes.hpp"

namespace mvgnn::data {

namespace {

/// Sparse anonymous-walk ids per node of one sample (densified by the
/// caller once the vocabulary size is final).
using AwIds = std::vector<std::vector<std::uint32_t>>;

pipe::PipelineConfig pipeline_config(const DatasetOptions& opts) {
  pipe::PipelineConfig cfg;
  cfg.walk = opts.walk;
  cfg.dep_noise = opts.dep_noise;
  cfg.interp = opts.interp;
  return cfg;
}

/// Replayed form of one item's samples: GraphSamples missing only the
/// densified AW view (sparse ids are kept until the vocabulary freezes).
struct ReplayedSamples {
  std::vector<GraphSample> samples;
  std::vector<AwIds> aw_ids;  // parallel to samples
};

/// Deterministic replay of one item's raw features against the dataset's
/// vocabularies: resolves token ids, assembles node_static from the trained
/// inst2vec table, and maps the stored anonymous walks through the AW
/// vocabulary (growing it when `grow`). `tok_ids` must hold the vocab id of
/// every ItemFeatures token, in order. This is the single featurization
/// path for cache-off, cache-cold and cache-warm builds alike — which is
/// what makes the three bit-identical.
ReplayedSamples replay_item(const pipe::ItemFeatures& feats,
                            const std::vector<std::uint32_t>& tok_ids,
                            Dataset& ds, const DatasetOptions& opts,
                            bool grow) {
  ReplayedSamples out;
  const std::uint32_t i2v_dim = ds.inst2vec.dim();
  const std::uint32_t kind_dims = 3;  // CU / Loop / Function one-hot

  for (const pipe::RawSample& rs : feats.samples) {
    GraphSample s;
    s.n = rs.n;
    s.edges = rs.edges;
    s.edge_kinds = rs.edge_kinds;

    // Node features.
    s.node_static.resize(s.n);
    s.node_dynamic.resize(s.n);
    std::vector<std::uint32_t> node_tokens;
    for (std::uint32_t k = 0; k < s.n; ++k) {
      node_tokens.clear();
      node_tokens.reserve(rs.node_token_ix[k].size());
      for (const std::uint32_t ix : rs.node_token_ix[k]) {
        node_tokens.push_back(tok_ids[ix]);
      }
      std::vector<float> st = ds.inst2vec.mean_of(node_tokens);
      st.resize(ds.static_dim, 0.0f);
      st[i2v_dim + rs.node_kinds[k]] = 1.0f;
      st[i2v_dim + kind_dims] =
          std::log1p(static_cast<float>(node_tokens.size()));
      s.node_static[k] = std::move(st);
      s.node_dynamic[k] = rs.node_dynamic[k];
    }
    s.token_seq.reserve(rs.token_seq_ix.size());
    for (const std::uint32_t ix : rs.token_seq_ix) {
      s.token_seq.push_back(tok_ids[ix]);
    }

    // Structural view: resolve the stored walks, keep sparse ids.
    AwIds ids_per_node(s.n);
    for (std::uint32_t k = 0; k < s.n; ++k) {
      const auto dist =
          graph::aw_distribution(rs.node_walks[k], ds.aw_vocab_table, grow);
      std::vector<std::uint32_t> ids;
      for (std::uint32_t id = 0; id < dist.size(); ++id) {
        const auto cnt = static_cast<std::uint32_t>(
            std::lround(dist[id] * opts.walk.gamma));
        for (std::uint32_t c = 0; c < cnt; ++c) ids.push_back(id);
      }
      ids_per_node[k] = std::move(ids);
    }
    out.aw_ids.push_back(std::move(ids_per_node));

    // Labels and baselines were computed at the featurize stage from the
    // clean profile; the stored hand-crafted features are the degraded
    // ones (what a real profiling run would have produced).
    s.loop_features = rs.loop_features;
    s.label = rs.label;
    s.pattern_label = rs.pattern_label;
    s.tool_autopar = rs.tool_autopar;
    s.tool_pluto = rs.tool_pluto;
    s.tool_discopop = rs.tool_discopop;
    s.loop_line = rs.loop_line;
    out.samples.push_back(std::move(s));
  }
  return out;
}

/// Densifies one sample's AW distribution over `vocab_size` slots.
void densify_aw(GraphSample& s, const AwIds& ids, std::uint32_t vocab_size) {
  s.aw_dist.resize(s.n);
  for (std::uint32_t k = 0; k < s.n; ++k) {
    std::vector<float> d(vocab_size, 0.0f);
    if (!ids[k].empty()) {
      const float inv = 1.0f / static_cast<float>(ids[k].size());
      for (const std::uint32_t id : ids[k]) d[id] += inv;
    }
    s.aw_dist[k] = std::move(d);
  }
}

// ---- cached Embed stage --------------------------------------------------

constexpr std::uint32_t kEmbedFormat = 1;

std::string serialize_embedding(const embedding::EmbeddingTable& t) {
  std::string o;
  auto put_u32 = [&o](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) o.push_back(static_cast<char>(v >> (8 * i)));
  };
  put_u32(kEmbedFormat);
  put_u32(t.vocab_size());
  put_u32(t.dim());
  for (std::uint32_t id = 0; id < t.vocab_size(); ++id) {
    for (const float v : t.row(id)) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      put_u32(bits);
    }
  }
  return o;
}

embedding::EmbeddingTable deserialize_embedding(std::string_view bytes,
                                                std::uint32_t want_vocab,
                                                std::uint32_t want_dim) {
  std::size_t off = 0;
  auto get_u32 = [&]() -> std::uint32_t {
    if (bytes.size() - off < 4) {
      throw std::runtime_error("embedding payload truncated");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<unsigned char>(bytes[off + i])}
           << (8 * i);
    }
    off += 4;
    return v;
  };
  if (get_u32() != kEmbedFormat) {
    throw std::runtime_error("embedding payload format mismatch");
  }
  const std::uint32_t vocab = get_u32();
  const std::uint32_t dim = get_u32();
  if (vocab != want_vocab || dim != want_dim) {
    throw std::runtime_error("embedding payload shape mismatch");
  }
  embedding::EmbeddingTable t(vocab, dim);
  for (std::uint32_t id = 0; id < vocab; ++id) {
    for (float& v : t.row(id)) {
      const std::uint32_t bits = get_u32();
      std::memcpy(&v, &bits, sizeof v);
    }
  }
  if (off != bytes.size()) {
    throw std::runtime_error("embedding payload trailing bytes");
  }
  return t;
}

}  // namespace

std::vector<std::size_t> Dataset::suite_indices(const std::string& suite) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (suite.empty() || samples[i].suite == suite) out.push_back(i);
  }
  return out;
}

Dataset build_dataset(const std::vector<ProgramSpec>& programs,
                      const DatasetOptions& opts, std::size_t* skipped,
                      BuildReport* report) {
  Dataset ds;
  obs::ScopedSpan build_span("dataset.build");

  // Quarantine: a per-sample failure is recorded and skipped, never fatal.
  // Workers from the parallel pipeline phase funnel through one mutex; the
  // hot path never takes it.
  std::mutex quarantine_mu;
  BuildReport local_report;
  auto quarantine = [&](const std::string& kernel, const std::string& variant,
                        const char* stage, const char* error) {
    obs::Registry::global().counter("corpus.quarantined_total").add(1);
    obs::log_warn("quarantined corpus program", {{"kernel", kernel},
                                                 {"variant", variant},
                                                 {"stage", stage},
                                                 {"error", error}});
    std::lock_guard<std::mutex> lock(quarantine_mu);
    local_report.quarantined.push_back(
        QuarantineEntry{kernel, variant, stage, error});
  };

  // ---- Phase 1: per-item staged pipeline (Parse..Featurize) ------------
  // Every (program, variant) item is independent, so this fans out over the
  // global thread pool; results are collected in item order and each item
  // derives its own noise and walk streams from its index, keeping the
  // dataset bit-identical regardless of scheduling — and regardless of
  // which items came out of the stage cache versus being recomputed.
  const auto& pipelines = transform::variant_pipelines();
  const std::size_t n_variants = opts.use_ir_variants ? pipelines.size() : 1;
  const std::size_t n_items = programs.size() * n_variants;
  const pipe::PipelineConfig pcfg = pipeline_config(opts);

  struct ItemResult {
    const ProgramSpec* spec = nullptr;
    std::string variant;
    cache::Key key;  // featurize-stage key, folded into the Embed key
    pipe::ItemFeatures feats;
  };
  std::vector<std::unique_ptr<ItemResult>> slots(n_items);
  par::parallel_for(
      0, n_items,
      [&](std::size_t item) {
        // Cooperative stop: checked once per item, so an interrupt lands
        // between pipeline items — in-flight ones finish, queued ones are
        // skipped (not quarantined; they did not fail).
        if (opts.stop_requested &&
            opts.stop_requested->load(std::memory_order_relaxed)) {
          return;
        }
        const ProgramSpec& spec = programs[item / n_variants];
        const std::size_t v = item % n_variants;
        pipe::ItemSpec is;
        is.source = spec.kernel.source;
        is.module_name = spec.kernel.name;
        is.args = spec.kernel.args;
        if (opts.use_ir_variants) is.variant = pipelines[v].name;
        is.noise_seed = opts.seed ^ (0x0DE9'0A0DULL + item * 0x9E37ULL);
        is.walk_seed = opts.seed ^ (0xA110'C8ULL + item * 0x9E37ULL);
        auto r = std::make_unique<ItemResult>();
        r->spec = &spec;
        r->variant = is.variant;
        r->key = pipe::stage_keys(is, pcfg).featurize;
        try {
          r->feats = pipe::run_item(is, pcfg, opts.cache);
        } catch (const pipe::StageError& e) {
          quarantine(spec.kernel.name, is.variant,
                     pipe::quarantine_stage(e.stage), e.what());
          return;
        } catch (const std::exception& e) {
          quarantine(spec.kernel.name, is.variant, "featurize", e.what());
          return;
        }
        slots[item] = std::move(r);
      },
      par::ThreadPool::global(), /*grain=*/1);
  // Interrupted? Return an empty dataset rather than a partial one: a
  // dataset missing arbitrary items would have different (but plausible-
  // looking) vocabularies and silently poison anything trained on it. The
  // caller gets the quarantine entries collected so far plus the
  // interrupted flag and decides how to exit (the CLI flushes the report
  // and exits 130).
  if (opts.stop_requested &&
      opts.stop_requested->load(std::memory_order_relaxed)) {
    obs::log_warn("dataset build interrupted; discarding partial results",
                  {{"items", std::to_string(n_items)}});
    local_report.interrupted = true;
    if (skipped) *skipped = local_report.quarantined.size();
    if (report) *report = std::move(local_report);
    return ds;
  }

  std::vector<ItemResult*> built;
  built.reserve(n_items);
  for (const auto& slot : slots) {
    if (slot) built.push_back(slot.get());
  }

  build_span.arg("items", n_items).arg("built", built.size());

  // ---- Phase 2: replay vocabulary growth, train/load inst2vec ----------
  // Token ids are resolved by mapping every item's token strings in item
  // order — the same growth order the un-staged builder used. The trained
  // table itself is the Embed stage: cacheable, keyed by every surviving
  // item's featurize key plus the skip-gram knobs.
  std::optional<obs::ScopedSpan> embed_span;
  embed_span.emplace("pipe.embed");
  std::vector<std::vector<std::uint32_t>> tok_ids(built.size());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::size_t i = 0; i < built.size(); ++i) {
    const pipe::ItemFeatures& f = built[i]->feats;
    auto& ids = tok_ids[i];
    ids.reserve(f.tokens.size());
    for (const std::string& t : f.tokens) {
      ids.push_back(ds.token_vocab.id_of(t, /*grow=*/true));
    }
    for (const auto& [a, b] : f.context_pairs) {
      pairs.emplace_back(ids[a], ids[b]);
    }
  }
  ds.token_vocab.freeze();
  embedding::SkipGramParams sg;
  sg.dim = opts.inst2vec_dim;
  sg.epochs = opts.skipgram_epochs;

  cache::Hasher embed_hasher;
  embed_hasher.str("mvgnn.pipe.embed.v1")
      .u32(kEmbedFormat)
      .u32(sg.dim)
      .u32(sg.epochs)
      .u64(opts.seed)
      .u64(built.size());
  for (const ItemResult* b : built) embed_hasher.key(b->key);
  const cache::Key embed_key = embed_hasher.digest();

  bool have_embedding = false;
  if (opts.cache) {
    if (auto blob = opts.cache->get(embed_key)) {
      try {
        ds.inst2vec = deserialize_embedding(*blob, ds.token_vocab.size(),
                                            sg.dim);
        have_embedding = true;
      } catch (const std::exception& e) {
        obs::log_warn("undecodable embed cache entry; retraining",
                      {{"error", e.what()}});
      }
    }
  }
  if (!have_embedding) {
    par::Rng sg_rng(opts.seed ^ 0x5EEDULL);
    ds.inst2vec =
        embedding::train_skipgram(ds.token_vocab.size(), pairs, sg, sg_rng);
    if (opts.cache) {
      opts.cache->put(embed_key, serialize_embedding(ds.inst2vec));
    }
  }
  embed_span->arg("vocab", ds.token_vocab.size())
      .arg("pairs", pairs.size())
      .arg("cached", have_embedding ? 1 : 0);
  embed_span.reset();

  // ---- Phase 3: one GraphSample per for-loop ---------------------------
  // Anonymous-walk ids are collected sparse first (the vocabulary grows
  // while resolving); distributions are densified after the freeze.
  std::vector<AwIds> pending_ids;

  const std::uint32_t kind_dims = 3;  // CU / Loop / Function one-hot
  ds.static_dim = opts.inst2vec_dim + kind_dims + 1;

  for (std::size_t i = 0; i < built.size(); ++i) {
    const ItemResult* b = built[i];
    try {
      ReplayedSamples rs =
          replay_item(b->feats, tok_ids[i], ds, opts, /*grow=*/true);
      for (std::size_t j = 0; j < rs.samples.size(); ++j) {
        GraphSample& s = rs.samples[j];
        s.suite = b->spec->suite;
        s.app = b->spec->app;
        s.kernel = b->spec->kernel.name;
        s.variant = b->variant;
        ds.samples.push_back(std::move(s));
        pending_ids.push_back(std::move(rs.aw_ids[j]));
      }
    } catch (const std::exception& e) {
      quarantine(b->spec->kernel.name, b->variant, "featurize", e.what());
    }
  }

  // ---- Phase 4: freeze the AW vocabulary and densify -------------------
  ds.aw_vocab_table.freeze();
  ds.aw_vocab = ds.aw_vocab_table.size();
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    densify_aw(ds.samples[i], pending_ids[i], ds.aw_vocab);
  }

  if (skipped) *skipped = local_report.quarantined.size();
  if (report) *report = std::move(local_report);
  return ds;
}

std::vector<GraphSample> featurize_program(const ProgramSpec& program,
                                            const Dataset& reference,
                                            const DatasetOptions& opts) {
  pipe::ItemSpec is;
  is.source = program.kernel.source;
  is.module_name = program.kernel.name;
  is.args = program.kernel.args;
  is.noise_seed = opts.seed ^ 0xF007'0A0DULL;
  is.walk_seed = opts.seed ^ 0xF00D'C8ULL;
  const pipe::ItemFeatures feats =
      pipe::run_item(is, pipeline_config(opts), opts.cache);

  // The vocabularies are frozen, so grow=false cannot mutate them; the
  // const_cast only satisfies the shared replay helper's signature.
  Dataset& ref = const_cast<Dataset&>(reference);
  std::vector<std::uint32_t> tok_ids;
  tok_ids.reserve(feats.tokens.size());
  for (const std::string& t : feats.tokens) {
    tok_ids.push_back(ref.token_vocab.id_of(t, /*grow=*/false));
  }
  ReplayedSamples rs = replay_item(feats, tok_ids, ref, opts, /*grow=*/false);
  for (std::size_t i = 0; i < rs.samples.size(); ++i) {
    rs.samples[i].suite = program.suite;
    rs.samples[i].app = program.app;
    rs.samples[i].kernel = program.kernel.name;
    densify_aw(rs.samples[i], rs.aw_ids[i], reference.aw_vocab);
  }
  return std::move(rs.samples);
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_kernel(
    const Dataset& ds, double train_fraction, std::uint64_t seed) {
  // Stable kernel list in first-appearance order.
  std::vector<std::string> kernels;
  for (const GraphSample& s : ds.samples) {
    if (std::find(kernels.begin(), kernels.end(), s.kernel) == kernels.end()) {
      kernels.push_back(s.kernel);
    }
  }
  par::Rng rng(seed);
  std::shuffle(kernels.begin(), kernels.end(), rng.engine());
  const std::size_t n_train = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(kernels.size())));
  std::vector<std::string> train_kernels(kernels.begin(),
                                         kernels.begin() + n_train);

  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    const bool in_train =
        std::find(train_kernels.begin(), train_kernels.end(),
                  ds.samples[i].kernel) != train_kernels.end();
    (in_train ? out.first : out.second).push_back(i);
  }
  return out;
}

std::vector<std::size_t> balance_classes(const Dataset& ds,
                                         const std::vector<std::size_t>& idx,
                                         std::uint64_t seed) {
  std::vector<std::size_t> pos, neg;
  for (const std::size_t i : idx) {
    (ds.samples[i].label ? pos : neg).push_back(i);
  }
  par::Rng rng(seed);
  std::shuffle(pos.begin(), pos.end(), rng.engine());
  std::shuffle(neg.begin(), neg.end(), rng.engine());
  const std::size_t n = std::min(pos.size(), neg.size());
  std::vector<std::size_t> out;
  out.reserve(2 * n);
  out.insert(out.end(), pos.begin(), pos.begin() + n);
  out.insert(out.end(), neg.begin(), neg.begin() + n);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> oversample_balance(
    const Dataset& ds, const std::vector<std::size_t>& idx,
    std::uint64_t seed) {
  std::vector<std::size_t> pos, neg;
  for (const std::size_t i : idx) {
    (ds.samples[i].label ? pos : neg).push_back(i);
  }
  if (pos.empty() || neg.empty()) return idx;
  par::Rng rng(seed ^ 0x05E2ULL);
  std::vector<std::size_t>& minority = pos.size() < neg.size() ? pos : neg;
  const std::size_t target = std::max(pos.size(), neg.size());
  std::vector<std::size_t> out = idx;
  while (minority.size() < target) {
    const std::size_t pick = minority[rng.uniform_u64(minority.size())];
    out.push_back(pick);
    minority.push_back(pick);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mvgnn::data
