// MiniC kernel-pattern generators — the stand-in for the NPB / PolyBench /
// BOTS sources (see DESIGN.md, substitutions table).
//
// Each pattern emits one MiniC program with a known number of `for` loops
// and a characteristic parallelism profile (DOALL, reduction, recurrence,
// indirect, call-based, ...). Variation (sizes, operators, offsets,
// statement order) is drawn from the Rng, which is how the paper's
// "transformed dataset" loop-order/operation mutations are realized.
#pragma once

#include <string>
#include <vector>

#include "parallel/rng.hpp"
#include "profiler/interp.hpp"

namespace mvgnn::data {

enum class Pattern : std::uint8_t {
  VecMap,            // c[i] = f(a[i], b[i])                    P
  VecScaleInPlace,   // a[i] = a[i] * k                         P
  Saxpy,             // y[i] = y[i] + alpha * x[i]              P
  StencilCopy,       // b[i] = w*a[i-1] + ... (out of place)    P
  ReduceSum,         // s += a[i]                               P (reduction)
  ReduceMax,         // s = fmax(s, a[i])                       P (DiscoPoP miss)
  DotProduct,        // s += a[i] * b[i]                        P (reduction)
  PrivTemp,          // t = ...; b[i] = g(t)                    P (privatizable)
  PrivArrayTemp,     // fill t[] then consume, t outside loop   P (array priv)
  Recurrence,        // a[i] = a[i-1] op x                      N
  ScalarCarried,     // s = phi(s, a[i]); b[i] = s              N
  CondUpdateMax,     // if (a[i] > s) s = a[i]                  N (unrecognized)
  EarlyExit,         // search loop with break                  N
  CallMapPure,       // b[i] = helper(a[i]), helper pure        P (static tools miss)
  CallAccumShared,   // helper accumulates into shared cell     N
  IndirectGather,    // b[i] = a[idx[i]]                        P (non-affine)
  IndirectHistogram, // h[idx[i]] += 1                          P (array reduction)
  IndirectScatter,   // a[idx[i]] = b[i] (+ checksum)           N (order-dep)
  DisjointCopy,      // a[i] = a[i + HALF], halves disjoint     P (needs Banerjee)
  MatMulNest,        // 3-deep nest, scalar acc                 P/P/P(red)
  Jacobi2D,          // out-of-place 5-point stencil, flat 2-D  P
  Seidel2D,          // in-place stencil                        N
  TriangularUpdate,  // for i, for j < i: L-solve style         N inner
  ArrayAccumNest,    // C[i*N+j] += A..*B.. (syr2k-like)        P (array red)
  ColdPath,          // loop behind a false flag                (never executed)
  WhileWrapped,      // while(conv) around a DOALL for          P inner
  FibDriver,         // r[i] = fib(i) recursion driver          P (call)
  NQueensStyle,      // backtracking recursion, shared board    N + driver
  ChecksumOnly,      // single reduction loop                   P (filler)
  // Parameter-dependent labels: the token stream is identical across the
  // variants, only the dependence behaviour differs — these force models
  // to use the dynamic/structural views rather than memorize templates.
  OffsetStencil,     // a[i] = a[i+OFF]..., OFF in {-2..2}      P iff OFF==0
  OffsetRecurrence,  // a[i] = a[i-K] op b[i], K in {0,1,2}     P iff K==0
  ParamOffset,       // a[i] = a[i+s]..., s a *runtime* argument P iff s==0
                     // (invisible to every static analysis and to tokens)
  SpMV,              // CSR sparse mat-vec: row loop P, indirect columns
  Transpose,         // B[j*N+i] = A[i*N+j]                     P (strided)
  SeparableStencil,  // row sweep then column sweep, same grid  P/P + N pair
  Pipeline3,         // three random stages over shared arrays (multi-loop
                     // kernels: realistic cross-loop dependence signatures)
  Timestepped,       // for t { out-of-place sweep; copy-back }: sequential
                     // timestep loop around two parallel sweeps (jacobi/heat)
};

[[nodiscard]] const char* pattern_name(Pattern p);

/// A generated single-kernel MiniC program.
struct GenKernel {
  std::string name;
  std::string source;
  std::vector<profiler::ArgInit> args;  // entry arguments, in order
  int for_loops = 0;                    // `for` statements in the source
};

/// Number of `for` loops pattern `p` emits (fixed per pattern).
[[nodiscard]] int pattern_loops(Pattern p);

/// Instantiates pattern `p` with rng-driven variation. The entry function
/// is always called `kernel`.
[[nodiscard]] GenKernel generate_kernel(Pattern p, const std::string& name,
                                        par::Rng& rng);

}  // namespace mvgnn::data
