// Benchmark corpus: per-application kernel populations sized to Table II
// (BT 184 loops, SP 252, ..., fib 2, nqueens 4; 840 for-loops total), plus
// the augmented "Generated" population (section IV-A's transformed dataset).
#pragma once

#include <string>
#include <vector>

#include "data/kernels.hpp"

namespace mvgnn::data {

/// One single-kernel MiniC program attributed to a benchmark application.
struct ProgramSpec {
  std::string suite;  // "NPB", "PolyBench", "BOTS", "Generated"
  std::string app;    // "BT", "2mm", "fib", ...
  GenKernel kernel;
  Pattern pattern = Pattern::VecMap;
};

/// Application target from Table II.
struct AppSpec {
  std::string app;
  std::string suite;
  int target_loops = 0;
  /// Pattern mix: (pattern, relative weight).
  std::vector<std::pair<Pattern, double>> mix;
};

/// The fourteen applications of Table II with suite-characteristic pattern
/// mixes (NPB: DOALL-heavy; PolyBench: affine polyhedral; BOTS: task
/// recursion).
[[nodiscard]] const std::vector<AppSpec>& table2_apps();

/// Instantiates `spec` into programs whose for-loop counts sum exactly to
/// `spec.target_loops` (1-loop fillers pad the tail).
[[nodiscard]] std::vector<ProgramSpec> build_app(const AppSpec& spec,
                                                 std::uint64_t seed);

/// The full benchmark corpus (every Table II application).
[[nodiscard]] std::vector<ProgramSpec> build_benchmark_corpus(
    std::uint64_t seed);

/// Additional "Generated" programs: fresh pattern instantiations with
/// mutated operators/sizes/offsets, drawn uniformly across all patterns,
/// with approximately `target_loops` for-loops in total.
[[nodiscard]] std::vector<ProgramSpec> build_generated_corpus(
    int target_loops, std::uint64_t seed);

}  // namespace mvgnn::data
