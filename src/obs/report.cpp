#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/json.hpp"

namespace mvgnn::obs {

namespace {

/// Canonical pipeline-stage order for the breakdown table. Anything else
/// under `pipe.` is appended after these; non-pipeline self-time goes to
/// the trailing bucket.
constexpr const char* kStageSpans[] = {
    "pipe.parse", "pipe.lower",     "pipe.profile", "pipe.peg",
    "pipe.walks", "pipe.featurize", "pipe.embed",
};
constexpr const char* kStageLabels[] = {
    "Parse", "Lower", "Profile", "Peg", "Walks", "Featurize", "Embed",
};
constexpr const char* kNonPipeline = "(non-pipeline)";

/// Stage label for a span name, or nullptr when it is not a stage span.
const char* stage_label(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kStageSpans); ++i) {
    if (name == kStageSpans[i]) return kStageLabels[i];
  }
  if (name.size() > 5 && name.substr(0, 5) == "pipe.") {
    return name.data() + 5;  // unknown pipe.* stage: its own row, raw name
  }
  return nullptr;
}

std::uint64_t duration_ns(const SpanEvent& e) {
  return e.end_ns >= e.start_ns ? e.end_ns - e.start_ns : 0;
}

/// Nearest-rank percentile over a sorted duration list.
std::uint64_t rank_percentile(const std::vector<std::uint64_t>& sorted,
                              double p) {
  if (sorted.empty()) return 0;  // empty guard: mirrors Histogram::percentile
  const double rank = p * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = idx == 0 ? 0 : idx - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string fmt_ns(std::uint64_t ns) {
  char buf[48];
  const double v = static_cast<double>(ns);
  if (ns >= 1'000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.3f s", v / 1e9);
  } else if (ns >= 1'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.3f ms", v / 1e6);
  } else if (ns >= 1'000ULL) {
    std::snprintf(buf, sizeof buf, "%.1f us", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string fmt_bytes(double b) {
  char buf[48];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  }
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

Report build_report(const std::vector<SpanEvent>& events,
                    const MetricsSnapshot* metrics) {
  Report rep;
  rep.events = events.size();

  // Group event indices by thread, preserving order. events() /
  // parse_chrome_trace both deliver per-thread begin order, so a span's
  // `parent` (its index in the thread's buffer) equals the parent's local
  // position in that group. An out-of-range or forward parent — possible
  // only if spans were still open at export — degrades to "root".
  std::map<std::uint32_t, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_tid[events[i].tid].push_back(i);
  }
  rep.threads = static_cast<std::uint32_t>(by_tid.size());

  std::uint64_t min_start = UINT64_MAX;
  std::uint64_t max_end = 0;
  std::vector<std::uint64_t> self(events.size(), 0);
  // Self-time = duration minus direct children's durations, per thread.
  for (const auto& [tid, group] : by_tid) {
    (void)tid;
    std::vector<std::uint64_t> child_ns(group.size(), 0);
    for (std::size_t li = 0; li < group.size(); ++li) {
      const SpanEvent& e = events[group[li]];
      min_start = std::min(min_start, e.start_ns);
      max_end = std::max(max_end, e.end_ns);
      if (e.flow_src != 0) ++rep.flow_links;
      const std::int32_t p = e.parent;
      if (p >= 0 && static_cast<std::size_t>(p) < li) {
        child_ns[static_cast<std::size_t>(p)] += duration_ns(e);
      }
    }
    for (std::size_t li = 0; li < group.size(); ++li) {
      const std::uint64_t dur = duration_ns(events[group[li]]);
      self[group[li]] = dur >= child_ns[li] ? dur - child_ns[li] : 0;
      rep.traced_self_ns += self[group[li]];
    }
  }
  rep.wall_ns = (max_end > min_start && min_start != UINT64_MAX)
                    ? max_end - min_start
                    : 0;

  // Per-span-name aggregation.
  struct NameAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::vector<std::uint64_t> durs;
  };
  std::unordered_map<std::string_view, NameAgg> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    NameAgg& agg = by_name[events[i].name];
    const std::uint64_t dur = duration_ns(events[i]);
    ++agg.count;
    agg.total_ns += dur;
    agg.self_ns += self[i];
    agg.durs.push_back(dur);
  }
  rep.spans.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    std::sort(agg.durs.begin(), agg.durs.end());
    SpanStat s;
    s.name = std::string(name);
    s.count = agg.count;
    s.total_ns = agg.total_ns;
    s.self_ns = agg.self_ns;
    s.p50_ns = rank_percentile(agg.durs, 0.50);
    s.p99_ns = rank_percentile(agg.durs, 0.99);
    rep.spans.push_back(std::move(s));
  }
  std::sort(rep.spans.begin(), rep.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });

  // Stage attribution: charge each span's self-time to its innermost
  // enclosing pipe.* ancestor (self-inclusive) on the same thread.
  std::map<std::string, StageStat> stage_acc;
  for (const auto& [tid, group] : by_tid) {
    (void)tid;
    for (std::size_t li = 0; li < group.size(); ++li) {
      const char* label = nullptr;
      std::size_t cur = li;
      for (int hops = 0; hops < 256; ++hops) {  // bounded: depth is small
        label = stage_label(events[group[cur]].name);
        if (label != nullptr) break;
        const std::int32_t p = events[group[cur]].parent;
        if (p < 0 || static_cast<std::size_t>(p) >= cur) break;
        cur = static_cast<std::size_t>(p);
      }
      StageStat& row = stage_acc[label != nullptr ? label : kNonPipeline];
      row.self_ns += self[group[li]];
      ++row.spans;
    }
  }
  // Canonical order first, then any extra pipe.* rows, then the bucket.
  for (const char* label : kStageLabels) {
    auto it = stage_acc.find(label);
    if (it == stage_acc.end()) continue;
    it->second.stage = label;
    rep.stages.push_back(std::move(it->second));
    stage_acc.erase(it);
  }
  auto bucket = stage_acc.extract(kNonPipeline);
  for (auto& [label, row] : stage_acc) {
    row.stage = label;
    rep.stages.push_back(std::move(row));
  }
  if (!bucket.empty()) {
    bucket.mapped().stage = kNonPipeline;
    rep.stages.push_back(std::move(bucket.mapped()));
  }
  for (StageStat& row : rep.stages) {
    row.pct = rep.traced_self_ns > 0
                  ? 100.0 * static_cast<double>(row.self_ns) /
                        static_cast<double>(rep.traced_self_ns)
                  : 0.0;
  }

  if (metrics != nullptr) {
    rep.has_metrics = true;
    rep.cache_hits = metrics->counter_or("cache.hits_total");
    rep.cache_misses = metrics->counter_or("cache.misses_total");
    rep.cache_mem_bytes = metrics->gauge_or("cache.mem_bytes");
    rep.cache_disk_bytes = metrics->gauge_or("cache.disk_bytes");
    rep.pool_executed =
        metrics->counter_or("thread_pool.tasks_executed_total");
    rep.pool_helped = metrics->counter_or("pool.helped_tasks_total");
    const MetricsSnapshot::Hist* lat =
        metrics->histogram("thread_pool.task_latency_us");
    if (lat != nullptr && lat->count > 0) {  // empty-histogram guard
      rep.task_p50_us = lat->p50;
      rep.task_p99_us = lat->p99;
    }
    rep.tensor_backend_id =
        static_cast<int>(metrics->gauge_or("tensor.backend", -1.0));
  }
  return rep;
}

namespace {

const char* tensor_backend_label(int id) {
  // Mirrors the frozen ids in tensor::backend (src/tensor/backend/
  // backend.hpp); duplicated here so offline report parsing stays
  // independent of the tensor layer.
  switch (id) {
    case 0: return "scalar";
    case 1: return "avx2";
    case 2: return "neon";
    default: return "unknown";
  }
}

std::string render_text(const Report& r, bool markdown) {
  std::string out;
  char buf[256];
  const char* rule = markdown ? "" : "----------------------------------";

  if (markdown) {
    out += "# mvgnn run report\n\n";
  } else {
    out += "== mvgnn run report ==============================================\n";
  }
  std::snprintf(buf, sizeof buf,
                "wall time %s | traced self %s | %llu spans on %u threads | "
                "%llu flow links\n",
                fmt_ns(r.wall_ns).c_str(), fmt_ns(r.traced_self_ns).c_str(),
                static_cast<unsigned long long>(r.events), r.threads,
                static_cast<unsigned long long>(r.flow_links));
  out += buf;
  if (markdown) out += '\n';

  // Pipeline stage breakdown.
  if (markdown) {
    out += "## Pipeline stages (self time)\n\n";
    out += "| stage | self | pct | spans |\n|---|---:|---:|---:|\n";
  } else {
    out += "-- pipeline stages (self time) -----";
    out += rule;
    out += '\n';
    out += "  stage            self           pct     spans\n";
  }
  double pct_sum = 0.0;
  for (const StageStat& s : r.stages) {
    pct_sum += s.pct;
    if (markdown) {
      std::snprintf(buf, sizeof buf, "| %s | %s | %.1f%% | %llu |\n",
                    s.stage.c_str(), fmt_ns(s.self_ns).c_str(), s.pct,
                    static_cast<unsigned long long>(s.spans));
    } else {
      std::snprintf(buf, sizeof buf, "  %-15s %11s   %6.1f%%  %8llu\n",
                    s.stage.c_str(), fmt_ns(s.self_ns).c_str(), s.pct,
                    static_cast<unsigned long long>(s.spans));
    }
    out += buf;
  }
  if (markdown) {
    std::snprintf(buf, sizeof buf, "| **total** | %s | %.1f%% | %llu |\n\n",
                  fmt_ns(r.traced_self_ns).c_str(), pct_sum,
                  static_cast<unsigned long long>(r.events));
  } else {
    std::snprintf(buf, sizeof buf, "  %-15s %11s   %6.1f%%  %8llu\n", "total",
                  fmt_ns(r.traced_self_ns).c_str(), pct_sum,
                  static_cast<unsigned long long>(r.events));
  }
  out += buf;

  // Hottest spans by self-time.
  if (markdown) {
    out += "## Hottest spans (self time)\n\n";
    out += "| span | count | total | self | p50 | p99 |\n"
           "|---|---:|---:|---:|---:|---:|\n";
  } else {
    out += "-- hottest spans (self time) -------";
    out += rule;
    out += '\n';
    out += "  span                        count       total        self"
           "         p50         p99\n";
  }
  constexpr std::size_t kTopSpans = 12;
  for (std::size_t i = 0; i < r.spans.size() && i < kTopSpans; ++i) {
    const SpanStat& s = r.spans[i];
    if (markdown) {
      std::snprintf(buf, sizeof buf, "| %s | %llu | %s | %s | %s | %s |\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.count),
                    fmt_ns(s.total_ns).c_str(), fmt_ns(s.self_ns).c_str(),
                    fmt_ns(s.p50_ns).c_str(), fmt_ns(s.p99_ns).c_str());
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %-26s %6llu %11s %11s %11s %11s\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    fmt_ns(s.total_ns).c_str(), fmt_ns(s.self_ns).c_str(),
                    fmt_ns(s.p50_ns).c_str(), fmt_ns(s.p99_ns).c_str());
    }
    out += buf;
  }
  if (r.spans.size() > kTopSpans) {
    std::snprintf(buf, sizeof buf, "%s(%zu more span names)\n",
                  markdown ? "\n" : "  ... ", r.spans.size() - kTopSpans);
    out += buf;
  }
  if (markdown) out += '\n';

  if (r.has_metrics) {
    const std::uint64_t lookups = r.cache_hits + r.cache_misses;
    if (markdown) out += "## Utilization\n\n";
    if (lookups > 0 || r.cache_mem_bytes > 0 || r.cache_disk_bytes > 0) {
      if (!markdown) {
        out += "-- cache ---------------------------";
        out += rule;
        out += '\n';
      }
      std::string ratio = "n/a";
      if (lookups > 0) {
        char rbuf[16];
        std::snprintf(rbuf, sizeof rbuf, "%.1f%%",
                      100.0 * static_cast<double>(r.cache_hits) /
                          static_cast<double>(lookups));
        ratio = rbuf;
      }
      std::snprintf(
          buf, sizeof buf,
          "%scache: hits %llu  misses %llu  hit ratio %s  mem %s  disk %s\n",
          markdown ? "- " : "  ",
          static_cast<unsigned long long>(r.cache_hits),
          static_cast<unsigned long long>(r.cache_misses), ratio.c_str(),
          fmt_bytes(r.cache_mem_bytes).c_str(),
          fmt_bytes(r.cache_disk_bytes).c_str());
      out += buf;
    }
    if (!markdown) {
      out += "-- thread pool ---------------------";
      out += rule;
      out += '\n';
    }
    std::string p50 = r.task_p50_us >= 0.0
                          ? fmt_ns(static_cast<std::uint64_t>(
                                std::llround(r.task_p50_us * 1e3)))
                          : "-";
    std::string p99 = r.task_p99_us >= 0.0
                          ? fmt_ns(static_cast<std::uint64_t>(
                                std::llround(r.task_p99_us * 1e3)))
                          : "-";
    std::snprintf(buf, sizeof buf,
                  "%spool: tasks executed %llu  helped %llu  task p50 %s  "
                  "p99 %s\n",
                  markdown ? "- " : "  ",
                  static_cast<unsigned long long>(r.pool_executed),
                  static_cast<unsigned long long>(r.pool_helped), p50.c_str(),
                  p99.c_str());
    out += buf;
    if (r.tensor_backend_id >= 0) {
      std::snprintf(buf, sizeof buf, "%skernels: backend %s\n",
                    markdown ? "- " : "  ",
                    tensor_backend_label(r.tensor_backend_id));
      out += buf;
    }
  }
  return out;
}

std::string render_json(const Report& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n  \"wall_ns\": %llu,\n  \"traced_self_ns\": %llu,\n"
                "  \"events\": %llu,\n  \"threads\": %u,\n"
                "  \"flow_links\": %llu,\n",
                static_cast<unsigned long long>(r.wall_ns),
                static_cast<unsigned long long>(r.traced_self_ns),
                static_cast<unsigned long long>(r.events), r.threads,
                static_cast<unsigned long long>(r.flow_links));
  out += buf;
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    const StageStat& s = r.stages[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"stage\": \"";
    append_json_escaped(out, s.stage);
    std::snprintf(buf, sizeof buf,
                  "\", \"self_ns\": %llu, \"pct\": %.4f, \"spans\": %llu}",
                  static_cast<unsigned long long>(s.self_ns), s.pct,
                  static_cast<unsigned long long>(s.spans));
    out += buf;
  }
  out += "\n  ],\n  \"spans\": [";
  for (std::size_t i = 0; i < r.spans.size(); ++i) {
    const SpanStat& s = r.spans[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"name\": \"";
    append_json_escaped(out, s.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"count\": %llu, \"total_ns\": %llu, "
                  "\"self_ns\": %llu, \"p50_ns\": %llu, \"p99_ns\": %llu}",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.total_ns),
                  static_cast<unsigned long long>(s.self_ns),
                  static_cast<unsigned long long>(s.p50_ns),
                  static_cast<unsigned long long>(s.p99_ns));
    out += buf;
  }
  out += "\n  ]";
  if (r.has_metrics) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                  "\"mem_bytes\": %.0f, \"disk_bytes\": %.0f},\n"
                  "  \"pool\": {\"executed\": %llu, \"helped\": %llu, "
                  "\"task_p50_us\": %.3f, \"task_p99_us\": %.3f}",
                  static_cast<unsigned long long>(r.cache_hits),
                  static_cast<unsigned long long>(r.cache_misses),
                  r.cache_mem_bytes, r.cache_disk_bytes,
                  static_cast<unsigned long long>(r.pool_executed),
                  static_cast<unsigned long long>(r.pool_helped),
                  r.task_p50_us, r.task_p99_us);
    out += buf;
    if (r.tensor_backend_id >= 0) {
      std::snprintf(buf, sizeof buf,
                    ",\n  \"tensor_backend\": \"%s\"",
                    tensor_backend_label(r.tensor_backend_id));
      out += buf;
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace

std::string render_report(const Report& report, ReportFormat format) {
  switch (format) {
    case ReportFormat::Markdown: return render_text(report, /*markdown=*/true);
    case ReportFormat::Json: return render_json(report);
    case ReportFormat::Text: break;
  }
  return render_text(report, /*markdown=*/false);
}

ParsedTrace parse_chrome_trace(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  const json::Value* evs = nullptr;
  if (doc.is_array()) {
    evs = &doc;  // bare-array form some tools emit
  } else {
    evs = doc.find("traceEvents");
    if (evs == nullptr || !evs->is_array()) {
      throw std::runtime_error("trace: missing traceEvents array");
    }
  }
  ParsedTrace out;
  // Flow endpoints are re-linked in a second pass: "s" carries the capture
  // point on the producer thread, "f" (same id) binds to the start of the
  // adopting slice, so (tid, ts) identifies the consumer X event exactly.
  struct FlowSrc {
    std::uint32_t tid;
    std::uint64_t ts_ns;
  };
  std::map<std::uint64_t, FlowSrc> flow_srcs;                // id -> producer
  std::vector<std::pair<std::uint64_t, FlowSrc>> flow_dsts;  // id, consumer
  for (const json::Value& ev : evs->as_array()) {
    if (!ev.is_object()) continue;
    const std::string ph = ev.str_or("ph", "X");
    if (ph == "s" || ph == "f") {
      FlowSrc end;
      end.tid = static_cast<std::uint32_t>(ev.num_or("tid", 0.0));
      end.ts_ns = static_cast<std::uint64_t>(
          std::llround(ev.num_or("ts", 0.0) * 1e3));
      const auto id =
          static_cast<std::uint64_t>(std::llround(ev.num_or("id", 0.0)));
      if (ph == "s") {
        flow_srcs.emplace(id, end);
      } else {
        flow_dsts.emplace_back(id, end);
      }
      continue;
    }
    if (ph != "X") continue;  // meta events carry no duration
    SpanEvent e;
    out.names.push_back(ev.str_or("name", "(unnamed)"));
    e.name = out.names.back().c_str();
    const double ts_us = ev.num_or("ts", 0.0);
    const double dur_us = ev.num_or("dur", 0.0);
    e.start_ns = static_cast<std::uint64_t>(std::llround(ts_us * 1e3));
    e.end_ns =
        e.start_ns + static_cast<std::uint64_t>(std::llround(dur_us * 1e3));
    e.tid = static_cast<std::uint32_t>(ev.num_or("tid", 0.0));
    if (const json::Value* args = ev.find("args");
        args != nullptr && args->is_object()) {
      e.parent = static_cast<std::int32_t>(args->num_or("parent", -1.0));
      e.depth = static_cast<std::int32_t>(args->num_or("depth", 0.0));
    } else {
      e.parent = -1;
    }
    out.events.push_back(e);
  }
  if (!flow_dsts.empty()) {
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> by_start;
    for (std::size_t i = 0; i < out.events.size(); ++i) {
      by_start.emplace(std::pair{out.events[i].tid, out.events[i].start_ns},
                       i);
    }
    for (const auto& [id, dst] : flow_dsts) {
      const auto src = flow_srcs.find(id);
      const auto slice = by_start.find({dst.tid, dst.ts_ns});
      if (src == flow_srcs.end() || slice == by_start.end()) continue;
      SpanEvent& e = out.events[slice->second];
      // The producer's span id is not serialized (the pair is keyed by the
      // consumer's id), so it stands in for flow_src; the producer's thread
      // and capture time round-trip exactly.
      e.id = id;
      e.flow_src = id;
      e.flow_ts_ns = src->second.ts_ns;
      e.flow_src_tid = src->second.tid;
    }
  }
  return out;
}

MetricsSnapshot parse_metrics_json(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) {
    throw std::runtime_error("metrics: document is not an object");
  }
  MetricsSnapshot snap;
  if (const json::Value* cs = doc.find("counters");
      cs != nullptr && cs->is_object()) {
    for (const auto& [name, v] : cs->as_object()) {
      if (!v.is_number()) continue;
      snap.counters.emplace_back(
          name, static_cast<std::uint64_t>(std::llround(v.as_number())));
    }
  }
  if (const json::Value* gs = doc.find("gauges");
      gs != nullptr && gs->is_object()) {
    for (const auto& [name, v] : gs->as_object()) {
      if (!v.is_number()) continue;
      snap.gauges.emplace_back(name, v.as_number());
    }
  }
  if (const json::Value* hs = doc.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, v] : hs->as_object()) {
      if (!v.is_object()) continue;
      MetricsSnapshot::Hist h;
      h.name = name;
      h.count = static_cast<std::uint64_t>(std::llround(v.num_or("count", 0)));
      h.sum = v.num_or("sum", 0.0);
      h.p50 = v.num_or("p50", 0.0);
      h.p99 = v.num_or("p99", 0.0);
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

}  // namespace mvgnn::obs
