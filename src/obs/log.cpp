#include "obs/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mvgnn::obs {

LogLevel parse_log_level(const char* s, LogLevel fallback) {
  if (!s || !*s) return fallback;
  std::string lower;
  for (; *s; ++s) lower += static_cast<char>(std::tolower(*s));
  if (lower == "trace" || lower == "0") return LogLevel::Trace;
  if (lower == "debug" || lower == "1") return LogLevel::Debug;
  if (lower == "info" || lower == "2") return LogLevel::Info;
  if (lower == "warn" || lower == "warning" || lower == "3")
    return LogLevel::Warn;
  if (lower == "error" || lower == "4") return LogLevel::Error;
  if (lower == "off" || lower == "quiet" || lower == "none" || lower == "5")
    return LogLevel::Off;
  return fallback;
}

std::string logfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args);
  return out;
}

std::string Logger::render(LogLevel level, const std::string& msg,
                           const std::vector<LogField>& fields) {
  std::string line;
  if (level == LogLevel::Warn) line += "[warn] ";
  if (level == LogLevel::Error) line += "[error] ";
  line += msg;
  for (const LogField& f : fields) {
    if (!line.empty()) line += "  ";
    line += f.key;
    line += ' ';
    line += f.value;
  }
  return line;
}

Logger::Logger() = default;

Logger::~Logger() { set_async(false); }

void Logger::set_sink(Sink sink) {
  flush();
  std::lock_guard lock(sink_mu_);
  sink_ = std::move(sink);
}

void Logger::emit(LogLevel level, const std::string& line) {
  std::lock_guard lock(sink_mu_);
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::FILE* out = (level >= LogLevel::Warn) ? stderr : stdout;
  std::fputs(line.c_str(), out);
  std::fputc('\n', out);
}

void Logger::log(LogLevel level, std::string msg,
                 std::vector<LogField> fields) {
  if (!enabled(level) || level == LogLevel::Off) return;
  std::string line = render(level, msg, fields);
  {
    std::unique_lock lock(q_mu_);
    if (async_) {
      queue_.emplace_back(level, std::move(line));
      q_cv_.notify_one();
      return;
    }
  }
  emit(level, line);
}

void Logger::set_async(bool async) {
  std::unique_lock lock(q_mu_);
  if (async == async_) return;
  if (async) {
    async_ = true;
    stop_writer_ = false;
    writer_ = std::thread([this] { writer_loop(); });
  } else {
    async_ = false;
    stop_writer_ = true;
    q_cv_.notify_all();
    lock.unlock();
    if (writer_.joinable()) writer_.join();
  }
}

void Logger::flush() {
  std::unique_lock lock(q_mu_);
  q_drained_.wait(lock, [this] { return queue_.empty(); });
}

void Logger::writer_loop() {
  std::unique_lock lock(q_mu_);
  for (;;) {
    q_cv_.wait(lock, [this] { return stop_writer_ || !queue_.empty(); });
    while (!queue_.empty()) {
      auto [level, line] = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      emit(level, line);
      lock.lock();
    }
    q_drained_.notify_all();
    if (stop_writer_) return;
  }
}

Logger& Logger::global() {
  static Logger* logger = [] {
    auto* l = new Logger();  // leaked: see header
    l->set_level(parse_log_level(std::getenv("MVGNN_LOG_LEVEL")));
    return l;
  }();
  return *logger;
}

void log_debug(std::string msg, std::vector<LogField> fields) {
  Logger::global().log(LogLevel::Debug, std::move(msg), std::move(fields));
}
void log_info(std::string msg, std::vector<LogField> fields) {
  Logger::global().log(LogLevel::Info, std::move(msg), std::move(fields));
}
void log_warn(std::string msg, std::vector<LogField> fields) {
  Logger::global().log(LogLevel::Warn, std::move(msg), std::move(fields));
}
void log_error(std::string msg, std::vector<LogField> fields) {
  Logger::global().log(LogLevel::Error, std::move(msg), std::move(fields));
}

}  // namespace mvgnn::obs
