// Scoped-span tracing with a Chrome trace_event exporter and cross-thread
// causality links.
//
//   {
//     OBS_SPAN("gemm");          // RAII: opens on entry, closes on exit
//     ...
//     { OBS_SPAN("gemm.panel"); ... }   // nested: parent linkage recorded
//   }
//
//   // Cross-thread: capture where the work was *submitted*, adopt where it
//   // runs. The worker span carries the submitting span as logical parent
//   // and the exporter emits Chrome flow events ("s"/"f") linking the two.
//   obs::TraceContext ctx = obs::TraceRecorder::global().current_context();
//   pool.submit([ctx] { obs::ScopedSpan span("task", ctx); ... });
//
// Design notes:
//  * Disabled is the steady state. When tracing is off, a span costs one
//    relaxed atomic load and nothing else — no clock reads, no allocation —
//    which is what keeps instrumented hot loops (GEMM panels, interpreter
//    runs) within the <2% overhead budget. `current_context()` and
//    `ScopedSpan::arg()` are equally free when disabled.
//  * When enabled, each thread appends to its own buffer guarded by a
//    per-thread mutex that is uncontended except during snapshot/export, so
//    recording never serializes worker threads against each other.
//  * Span names must be string literals (or otherwise outlive the
//    recorder); they are stored by pointer. The same holds for arg keys.
//  * Parent linkage is per thread: a span's parent is the innermost span
//    open on the same thread when it started (-1 for roots). Spans opened
//    inside thread-pool tasks are roots of that worker's timeline, but when
//    they adopt a `TraceContext` the submitting span's id is recorded as
//    their logical parent (`flow_src`) and the Chrome export draws a flow
//    arrow from fan-out to execution.
//  * Every span gets a process-unique nonzero id (derived from thread id
//    and per-thread index, no extra atomics) so links survive export and
//    re-import (`obs/report.hpp` parses traces back for aggregation).
//  * `TraceRecorder::global()` is a leaked singleton so worker threads that
//    finish during static destruction can still close spans safely.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvgnn::obs {

/// A capture of "the span that caused this work": taken at a submission
/// site on the submitting thread, adopted by the span that executes the
/// work on another thread. Zero `span_id` means "no context" (tracing was
/// disabled or no span was open) and adoption is a no-op.
struct TraceContext {
  std::uint64_t span_id = 0;  // id of the innermost open span; 0 = none
  std::uint32_t tid = 0;      // recorder thread id the capture happened on
  std::uint64_t ts_ns = 0;    // capture time (anchors the flow "s" event)

  [[nodiscard]] explicit operator bool() const noexcept {
    return span_id != 0;
  }
};

/// One optional key/value annotation on a span (rows, nnz, batch size,
/// cache hit/miss, ...). Keys must be string literals.
struct SpanArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

struct SpanEvent {
  static constexpr std::size_t kMaxArgs = 4;

  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;       // 0 while the span is still open
  std::uint64_t id = 0;           // process-unique nonzero span id
  std::uint64_t flow_src = 0;     // id of the submitting span (0 = none)
  std::uint64_t flow_ts_ns = 0;   // when the adopted context was captured
  std::uint32_t flow_src_tid = 0; // thread the context was captured on
  std::uint32_t tid = 0;          // recorder-assigned compact thread id
  std::int32_t parent = -1;       // index of parent event on the same thread
  std::int32_t depth = 0;         // nesting level on this thread (0 = root)
  std::uint32_t nargs = 0;
  std::array<SpanArg, kMaxArgs> args{};
};

class ScopedSpan;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The calling thread's innermost open span, captured for cross-thread
  /// adoption. Returns a zero context (cost: one relaxed load) when tracing
  /// is disabled or no span is open.
  [[nodiscard]] TraceContext current_context();

  /// Drops all recorded events. Only call while no spans are open.
  void clear();

  /// Snapshot of every completed event across all threads, in per-thread
  /// begin order (thread ids ascending). Open spans are skipped.
  [[nodiscard]] std::vector<SpanEvent> events() const;

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds,
  /// plus "s"/"f" flow events for cross-thread links) loadable by
  /// chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  /// Process-wide recorder used by OBS_SPAN. Never destroyed.
  static TraceRecorder& global();

 private:
  friend class ScopedSpan;

  struct ThreadBuf {
    std::uint32_t tid = 0;
    mutable std::mutex mu;           // uncontended except during export
    std::vector<SpanEvent> events;   // begin order
    std::vector<std::int32_t> open;  // stack of indices into `events`
  };

  /// This thread's buffer, registering it on first use.
  ThreadBuf& thread_buf();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards bufs_
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
};

/// RAII span against the global recorder. No-op when tracing is disabled at
/// construction; a span that started while enabled always closes cleanly
/// even if tracing is disabled mid-flight.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    TraceRecorder& r = TraceRecorder::global();
    if (r.enabled()) begin(r, name, nullptr);
  }
  /// Opens a span that adopts `ctx` as its logical parent: the exporter
  /// links the submitting span to this one with a Chrome flow arrow. A zero
  /// context records a plain span.
  ScopedSpan(const char* name, const TraceContext& ctx) {
    TraceRecorder& r = TraceRecorder::global();
    if (r.enabled()) begin(r, name, &ctx);
  }
  ~ScopedSpan() {
    if (buf_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a u64 annotation (up to SpanEvent::kMaxArgs per span; extras
  /// are dropped). `key` must be a string literal. Free when tracing was
  /// disabled at span construction. Chainable: span.arg("m", m).arg("n", n).
  ScopedSpan& arg(const char* key, std::uint64_t value);

 private:
  void begin(TraceRecorder& r, const char* name, const TraceContext* ctx);
  void end();

  TraceRecorder::ThreadBuf* buf_ = nullptr;
  std::int32_t index_ = -1;
};

}  // namespace mvgnn::obs

#define MVGNN_OBS_CAT2(a, b) a##b
#define MVGNN_OBS_CAT(a, b) MVGNN_OBS_CAT2(a, b)
/// Opens a scoped span named `name` (must be a string literal) for the rest
/// of the enclosing block.
#define OBS_SPAN(name) \
  ::mvgnn::obs::ScopedSpan MVGNN_OBS_CAT(obs_span_, __LINE__)(name)
