// Scoped-span tracing with a Chrome trace_event exporter.
//
//   {
//     OBS_SPAN("gemm");          // RAII: opens on entry, closes on exit
//     ...
//     { OBS_SPAN("gemm.panel"); ... }   // nested: parent linkage recorded
//   }
//
// Design notes:
//  * Disabled is the steady state. When tracing is off, a span costs one
//    relaxed atomic load and nothing else — no clock reads, no allocation —
//    which is what keeps instrumented hot loops (GEMM panels, interpreter
//    runs) within the <2% overhead budget.
//  * When enabled, each thread appends to its own buffer guarded by a
//    per-thread mutex that is uncontended except during snapshot/export, so
//    recording never serializes worker threads against each other.
//  * Span names must be string literals (or otherwise outlive the
//    recorder); they are stored by pointer.
//  * Parent linkage is per thread: a span's parent is the innermost span
//    open on the same thread when it started (-1 for roots). Spans opened
//    inside thread-pool tasks are therefore roots of that worker's
//    timeline, which is exactly how Chrome's viewer groups them.
//  * `TraceRecorder::global()` is a leaked singleton so worker threads that
//    finish during static destruction can still close spans safely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvgnn::obs {

struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;     // 0 while the span is still open
  std::uint32_t tid = 0;        // recorder-assigned compact thread id
  std::int32_t parent = -1;     // index of parent event on the same thread
  std::int32_t depth = 0;       // nesting level on this thread (0 = root)
};

class ScopedSpan;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events. Only call while no spans are open.
  void clear();

  /// Snapshot of every completed event across all threads, in per-thread
  /// begin order (thread ids ascending). Open spans are skipped.
  [[nodiscard]] std::vector<SpanEvent> events() const;

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds)
  /// loadable by chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  /// Process-wide recorder used by OBS_SPAN. Never destroyed.
  static TraceRecorder& global();

 private:
  friend class ScopedSpan;

  struct ThreadBuf {
    std::uint32_t tid = 0;
    mutable std::mutex mu;           // uncontended except during export
    std::vector<SpanEvent> events;   // begin order
    std::vector<std::int32_t> open;  // stack of indices into `events`
  };

  /// This thread's buffer, registering it on first use.
  ThreadBuf& thread_buf();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards bufs_
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
};

/// RAII span against the global recorder. No-op when tracing is disabled at
/// construction; a span that started while enabled always closes cleanly
/// even if tracing is disabled mid-flight.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    TraceRecorder& r = TraceRecorder::global();
    if (r.enabled()) begin(r, name);
  }
  ~ScopedSpan() {
    if (buf_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(TraceRecorder& r, const char* name);
  void end();

  TraceRecorder::ThreadBuf* buf_ = nullptr;
  std::int32_t index_ = -1;
};

}  // namespace mvgnn::obs

#define MVGNN_OBS_CAT2(a, b) a##b
#define MVGNN_OBS_CAT(a, b) MVGNN_OBS_CAT2(a, b)
/// Opens a scoped span named `name` (must be a string literal) for the rest
/// of the enclosing block.
#define OBS_SPAN(name) \
  ::mvgnn::obs::ScopedSpan MVGNN_OBS_CAT(obs_span_, __LINE__)(name)
