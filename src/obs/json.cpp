#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace mvgnn::obs::json {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte offset " +
                           std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage after document");
    return v;
  }

 private:
  // Deep enough for any document this repo writes (traces nest ~4 levels);
  // shallow enough that corrupt input can't blow the stack.
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = Value::make_string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail(pos_, "invalid literal");
        v = Value::make_bool(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail(pos_, "invalid literal");
        v = Value::make_bool(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        break;
      default: v = Value::make_number(parse_number());
    }
    --depth_;
    return v;
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == '}') {
        ++pos_;
        return Value::make_object(std::move(members));
      }
      fail(pos_, "expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == ']') {
        ++pos_;
        return Value::make_array(std::move(items));
      }
      fail(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point. Surrogate pairs don't occur in
          // anything this repo writes; pass them through as-is rather than
          // reject (hand-edited baselines should not be brittle here).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ != before;
    };
    if (!digits()) fail(start, "invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail(start, "invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail(start, "invalid number");
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size() || !std::isfinite(v)) {
      fail(start, "unparseable number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return *arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return *obj_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : *obj_) {
    if (k == key) found = &v;  // last occurrence wins
  }
  return found;
}

double Value::num_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  if (v->is_number()) return v->num_;
  if (v->is_bool()) return v->bool_ ? 1.0 : 0.0;
  return fallback;
}

std::string Value::str_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return fallback;
  return v->str_;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::Array;
  v.arr_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::Object;
  v.obj_ = std::make_shared<Object>(std::move(o));
  return v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace mvgnn::obs::json
