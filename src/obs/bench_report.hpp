// Unified benchmark result schema + regression comparison.
//
// Every `bench/abl_*` binary writes its results through `BenchReport`, so
// all committed `BENCH_*.json` snapshots share one shape and one tool
// (`tools/bench_compare`) can gate any of them:
//
//   {
//     "bench": "abl_cache",
//     "schema": 1,
//     "config":  {"samples": 9222, "reps": 3, "smoke": 0},
//     "metrics": {
//       "warm_s":          {"value": 0.54, "goal": "lower",  "unit": "s"},
//       "warm_speedup_vs_cold": {"value": 12.7, "goal": "higher"},
//       "disk_entries":    {"value": 5701}
//     }
//   }
//
// `goal` declares which direction is a regression ("lower" = smaller is
// better, "higher" = larger is better); metrics without a goal are
// informational and never gate. `config` records how the numbers were
// produced (sizes, reps, thread counts) so a snapshot is interpretable on
// its own and a compare against a differently-configured run is visible.
//
// Comparison: relative change per metric against a tolerance (default or
// per-metric override), optionally restricted to a key subset — CI smoke
// runs use small sizes and compare only size-robust ratio metrics against
// the committed full-size snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mvgnn::obs {

enum class MetricGoal : std::uint8_t {
  None,    // informational — never gates
  Lower,   // smaller is better (latency, bytes)
  Higher,  // larger is better (throughput, speedup, hit ratio)
};

/// Accumulates one benchmark's config + metrics and writes the schema-v1
/// JSON document. Insertion order is preserved in the output.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void config(const std::string& key, double value);
  void config(const std::string& key, const std::string& value);

  /// Records a metric. Re-recording a key overwrites the previous value
  /// (convenient for min-of-N loops).
  void metric(const std::string& key, double value,
              MetricGoal goal = MetricGoal::None, const char* unit = nullptr);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::string to_json() const;
  /// Atomic write (tmp + rename); logs and returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Metric {
    std::string key;
    double value = 0.0;
    MetricGoal goal = MetricGoal::None;
    std::string unit;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-rendered
  std::vector<Metric> metrics_;
};

struct CompareOptions {
  /// Default relative tolerance: a goal-carrying metric regresses when it
  /// moves against its goal by more than this fraction of the baseline.
  double tolerance = 0.10;
  /// Per-metric overrides (e.g. {"bytes_identical", 0.0} for exact).
  std::map<std::string, double> per_metric;
  /// When non-empty, only these baseline metrics are compared; a listed key
  /// missing from the baseline is an error (typo guard).
  std::vector<std::string> keys;
};

struct MetricVerdict {
  enum class Status : std::uint8_t {
    Pass,         // within tolerance
    Improved,     // beyond tolerance in the good direction
    Regressed,    // beyond tolerance against the goal  -> gate fails
    Info,         // no goal declared; never gates
    MissingFresh, // in baseline but not in fresh run   -> gate fails
    MissingBase,  // requested via keys but not in baseline -> gate fails
    New,          // in fresh run only; informational
  };

  std::string key;
  double baseline = 0.0;
  double fresh = 0.0;
  double rel_change = 0.0;  // (fresh - baseline) / |baseline|
  double tolerance = 0.0;
  MetricGoal goal = MetricGoal::None;
  Status status = Status::Info;
};

struct CompareResult {
  std::string bench;
  bool names_match = true;  // mismatched bench names fail the gate
  bool ok = true;           // false when anything Regressed/Missing
  std::vector<MetricVerdict> rows;
};

/// Diffs two schema-v1 BenchReport documents. Throws std::runtime_error on
/// malformed JSON or an unsupported schema version.
CompareResult compare_bench_reports(const std::string& baseline_json,
                                    const std::string& fresh_json,
                                    const CompareOptions& opts);

/// Human-readable comparison table (one line per metric + verdict summary).
std::string render_compare(const CompareResult& result);

}  // namespace mvgnn::obs
