// Minimal JSON reader for the observability tooling — just enough to parse
// what this repo itself writes (Chrome traces from obs/trace.cpp, metrics
// snapshots from obs/metrics.cpp, BenchReport files from obs/bench_report.cpp)
// plus hand-edited baselines. No external dependency; strict enough to
// reject torn/truncated documents loudly rather than misattribute numbers.
//
// Deliberately small surface:
//  * All numbers are doubles (the writers never emit integers that lose
//    precision below 2^53 — span ids stay under 2^53 by construction).
//  * Object keys keep insertion order; duplicate keys keep the last value
//    (matching how browsers treat trace JSON).
//  * `parse` throws std::runtime_error with a byte offset on malformed
//    input, in the same spirit as the checkpoint/corpus loaders (src/io).
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mvgnn::obs::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors: throw std::runtime_error on kind mismatch so callers
  /// fail loudly on schema drift instead of reading zeros.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. Duplicate keys resolve to the last occurrence.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience: member as number/string with a fallback when absent or of
  /// the wrong kind. `num_or` tolerates booleans (0/1) since Chrome tools
  /// emit flags both ways.
  [[nodiscard]] double num_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   std::string fallback) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirect so Value stays movable/copyable without recursive layout.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses one JSON document. Trailing whitespace is allowed, trailing
/// non-whitespace is an error. Throws std::runtime_error with a byte offset
/// on malformed input or nesting deeper than an internal sanity cap.
Value parse(std::string_view text);

}  // namespace mvgnn::obs::json
