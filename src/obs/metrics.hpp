// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Design notes:
//  * The hot path (Counter::add, Gauge::set, Histogram::observe) is
//    lock-free: plain relaxed atomics, no allocation, no registry lookup.
//    Call sites fetch the instrument once (typically into a function-local
//    static reference) and hammer it afterwards.
//  * Registration is mutex-protected and allocation-heavy by design — it
//    happens once per series. Instruments are heap-allocated and never
//    removed, so references handed out stay valid for the registry's
//    lifetime.
//  * `Registry::global()` is a leaked process-wide singleton (safe to touch
//    from worker-thread teardown paths); independent `Registry` instances
//    can be constructed for tests.
//  * Snapshots export every registered series as text (`name value` lines)
//    or JSON; histograms export their bucket counts, total count and sum.
//
// Naming convention (see docs/observability.md): lower-case dot-separated
// `<subsystem>.<series>` with `_total` suffix for monotonic counters and a
// unit suffix (`_us`, `_bytes`) for histograms/gauges with dimension.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvgnn::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit overflow bucket catches everything above
/// the last edge. Bucket layout is frozen at construction so `observe` is a
/// branch-light binary search plus one relaxed increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Estimated p-quantile (p in [0,1]) by linear interpolation inside the
  /// containing bucket. Overflow-bucket hits clamp to the last edge.
  [[nodiscard]] double percentile(double p) const;

  /// 1-2-5 series from `lo` up to at least `hi` — the usual latency ladder.
  static std::vector<double> exponential_bounds(double lo, double hi);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered series — the unit of work for the
/// background sampler (obs/sampler.hpp) and `mvgnn report` (obs/report.hpp).
/// Histograms carry derived summary stats instead of raw buckets; `p50`/`p99`
/// are 0 when the histogram is empty (check `count` before trusting them).
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;           // sorted
  std::vector<Hist> histograms;                                 // sorted

  /// Counter value by name; `fallback` when the series doesn't exist.
  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
  /// Gauge value by name; `fallback` when the series doesn't exist.
  [[nodiscard]] double gauge_or(const std::string& name,
                                double fallback = 0.0) const;
  /// Histogram summary by name; nullptr when the series doesn't exist.
  [[nodiscard]] const Hist* histogram(const std::string& name) const;
};

/// Name -> instrument map. Lookups by name are mutex-protected; returned
/// references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram and ignore `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Number of registered series across all three kinds.
  [[nodiscard]] std::size_t size() const;

  /// Copies every series (values only, no instrument references) — safe to
  /// hand to another thread or serialize while recording continues.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// `name value` lines, histograms as `name{le=...}` rows plus derived
  /// `_p50`/`_p99` lines (omitted while the histogram is empty), sorted by
  /// name.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Process-wide registry used by all built-in instrumentation. Never
  /// destroyed, so late worker threads can safely bump counters at exit.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mvgnn::obs
