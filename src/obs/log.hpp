// Structured, level-filtered logging.
//
//   obs::log_info("", {{"epoch", obs::logfmt("%3zu", e)},
//                      {"loss", obs::logfmt("%.4f", loss)}});
//   // -> "epoch   0  loss 1.0986"
//
// Design notes:
//  * A record is a free-form message plus ordered key/value fields whose
//    values are pre-formatted strings. The default text rendering joins
//    `key value` pairs with two spaces — deliberately identical to the
//    printf tables this repo has always emitted, so replacing printf with
//    the logger does not change any parseable output.
//  * Info and below go to stdout bare; Warn/Error are prefixed with
//    "[warn] "/"[error] " and keep stdout clean by going to stderr.
//  * The minimum level defaults to Info and honours the MVGNN_LOG_LEVEL
//    environment variable (trace|debug|info|warn|error|off) at startup.
//  * `set_async(true)` moves rendering output to a single writer thread so
//    hot loops never block on stdio; `flush()` drains it. Synchronous mode
//    (the default) writes under a mutex.
//  * `Logger::global()` is a leaked singleton; independent instances can be
//    constructed for tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdarg>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mvgnn::obs {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Parses a level name (case-insensitive) or digit; `fallback` on junk.
LogLevel parse_log_level(const char* s, LogLevel fallback = LogLevel::Info);

/// One pre-formatted key/value field.
struct LogField {
  std::string key;
  std::string value;
};

/// printf-style formatting into a std::string (for field values).
std::string logfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

class Logger {
 public:
  /// A sink receives the fully rendered line (no trailing newline) plus the
  /// record's level, e.g. to route to a file or a test capture buffer.
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink (default: stdout for <= Info, stderr above).
  void set_sink(Sink sink);

  /// Toggles the single-writer-thread mode. Turning it off joins the writer
  /// after draining the queue.
  void set_async(bool async);

  /// Blocks until every queued record has reached the sink.
  void flush();

  void log(LogLevel level, std::string msg, std::vector<LogField> fields = {});

  /// Renders a record the way the default sink prints it: message, then
  /// `key value` pairs joined by two spaces, Warn/Error level-prefixed.
  static std::string render(LogLevel level, const std::string& msg,
                            const std::vector<LogField>& fields);

  /// Process-wide logger (never destroyed). Level is initialized from
  /// MVGNN_LOG_LEVEL on first use.
  static Logger& global();

 private:
  void emit(LogLevel level, const std::string& line);
  void writer_loop();

  std::atomic<int> level_{static_cast<int>(LogLevel::Info)};
  std::mutex sink_mu_;
  Sink sink_;

  // Async writer state.
  std::mutex q_mu_;
  std::condition_variable q_cv_;
  std::condition_variable q_drained_;
  std::deque<std::pair<LogLevel, std::string>> queue_;
  std::thread writer_;
  bool async_ = false;
  bool stop_writer_ = false;
};

// Convenience wrappers against the global logger.
void log_debug(std::string msg, std::vector<LogField> fields = {});
void log_info(std::string msg, std::vector<LogField> fields = {});
void log_warn(std::string msg, std::vector<LogField> fields = {});
void log_error(std::string msg, std::vector<LogField> fields = {});

}  // namespace mvgnn::obs
