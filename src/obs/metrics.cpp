#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "io/atomic_file.hpp"

namespace mvgnn::obs {

namespace {

/// Shortest round-trippable formatting; avoids locale-dependent streams.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to something readable when the value is exactly representable.
  char shorter[64];
  std::snprintf(shorter, sizeof shorter, "%.6g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) >= rank) {
      // Interpolate between the bucket's lower and upper edge. The open-
      // ended buckets clamp to their finite edge.
      const double hi = (i < bounds_.size()) ? bounds_[i] : bounds_.back();
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double t = (rank - static_cast<double>(prev)) /
                       static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(t, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi) {
  // Degenerate inputs are clamped instead of producing an unusable layout:
  // a non-positive or non-finite `lo` falls back to 1.0, and a `hi` that is
  // NaN, infinite or below `lo` collapses to `lo` (one finite edge plus the
  // overflow bucket). The unclamped version returned an empty edge list for
  // the former — a single catch-all bucket that silently recorded nothing
  // useful — and looped forever when `hi` was NaN (no value compares >= it).
  if (!std::isfinite(lo) || lo <= 0.0) lo = 1.0;
  if (!std::isfinite(hi) || hi < lo) hi = lo;
  std::vector<double> out;
  double base = 1.0;  // largest power of ten <= lo
  while (base > lo) base /= 10.0;
  while (base * 10.0 <= lo) base *= 10.0;
  static constexpr double kSteps[] = {1.0, 2.0, 5.0};
  // Unreachable for sanitized inputs (512 edges span more than the double
  // range), but makes termination a structural property of the loop.
  constexpr std::size_t kMaxEdges = 512;
  for (;; base *= 10.0) {
    for (const double s : kSteps) {
      const double v = base * s;
      if (v < lo) continue;
      out.push_back(v);
      if (v >= hi || out.size() >= kMaxEdges) return out;
    }
  }
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

std::uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double MetricsSnapshot::gauge_or(const std::string& name,
                                 double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const MetricsSnapshot::Hist* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const Hist& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::size_t Registry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hist;
    hist.name = name;
    hist.count = h->count();
    hist.sum = h->sum();
    if (hist.count > 0) {
      hist.p50 = h->percentile(0.5);
      hist.p99 = h->percentile(0.99);
    }
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

std::string Registry::to_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ' ' << fmt_double(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << name << "{le=";
      if (i < bounds.size()) {
        os << fmt_double(bounds[i]);
      } else {
        os << "+inf";
      }
      os << "} " << counts[i] << '\n';
    }
    os << name << "_count " << h->count() << '\n';
    os << name << "_sum " << fmt_double(h->sum()) << '\n';
    // Derived quantiles, matching the JSON export. Skipped while empty:
    // printing "p50 0" for a histogram that never observed anything reads
    // as a measurement, not an absence.
    if (h->count() > 0) {
      os << name << "_p50 " << fmt_double(h->percentile(0.5)) << '\n';
      os << name << "_p99 " << fmt_double(h->percentile(0.99)) << '\n';
    }
  }
  return os.str();
}

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << fmt_double(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"bounds\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      os << (i ? ", " : "") << fmt_double(bounds[i]);
    }
    os << "], \"buckets\": [";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << (i ? ", " : "") << counts[i];
    }
    os << "], \"count\": " << h->count()
       << ", \"sum\": " << fmt_double(h->sum())
       << ", \"p50\": " << fmt_double(h->percentile(0.5))
       << ", \"p99\": " << fmt_double(h->percentile(0.99)) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool Registry::write_json(const std::string& path) const {
  // Atomic (tmp + rename) so a crash mid-export never leaves a torn
  // snapshot under the final name.
  try {
    io::atomic_write_file(path, [this](std::ostream& os) { os << to_json(); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

}  // namespace mvgnn::obs
