#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "obs/log.hpp"

namespace mvgnn::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_num(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

MetricsSampler::MetricsSampler(Options opts) : opts_(std::move(opts)) {
  opts_.interval_ms = std::max<std::uint64_t>(opts_.interval_ms, 10);
  if (opts_.registry == nullptr) opts_.registry = &Registry::global();
}

MetricsSampler::~MetricsSampler() { stop(); }

bool MetricsSampler::start() {
  std::unique_lock lock(mu_);
  if (running_ || thread_.joinable()) return running_;
  if (stop_pending_) {
    // A stop() raced this start() and latched first: honor it instead of
    // launching a thread the stopper can no longer see. The latch is
    // consumed so a later, genuinely sequential start() works normally.
    stop_pending_ = false;
    return false;
  }
  FILE* f = std::fopen(opts_.path.c_str(), "w");
  if (f == nullptr) {
    lock.unlock();
    log_error("metrics sampler could not open series file",
              {{"path", opts_.path}});
    return false;
  }
  file_ = f;
  start_ns_ = now_ns();
  stop_ = std::make_shared<StopToken>();
  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void MetricsSampler::stop() {
  {
    std::lock_guard lock(mu_);
    if (!thread_.joinable()) {
      // Nothing running from this caller's point of view — but a start()
      // may be mid-flight on another thread. Latch so it refuses to
      // launch rather than leaving an unstoppable sampler behind.
      stop_pending_ = true;
      return;
    }
    stop_->request_stop();
  }
  thread_.join();
  // The loop has exited; state below is no longer shared.
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
    file_ = nullptr;
  }
  std::lock_guard lock(mu_);
  thread_ = std::thread();  // allow a fresh sequential start()
  running_ = false;
}

bool MetricsSampler::running() const {
  std::lock_guard lock(mu_);
  return running_;
}

std::uint64_t MetricsSampler::rows_written() const {
  std::lock_guard lock(mu_);
  return rows_;
}

void MetricsSampler::loop() {
  const auto interval = std::chrono::milliseconds(opts_.interval_ms);
  // Pin this run's token: the owner only mutates `stop_` under mu_ while
  // no thread is running, but holding our own reference keeps the wait
  // target alive no matter how owner-side shutdown interleaves.
  const std::shared_ptr<StopToken> token = [this] {
    std::lock_guard lock(mu_);
    return stop_;
  }();
  for (;;) {
    const bool stopping = token->wait_for_stop(interval);
    // Sample on every tick and once more on the way out, so even a run
    // shorter than one interval leaves a (final-state) row behind.
    sample_once((now_ns() - start_ns_) / 1'000'000);
    if (stopping) return;
  }
}

void MetricsSampler::sample_once(std::uint64_t t_ms) {
  const MetricsSnapshot snap = opts_.registry->snapshot();
  const std::uint64_t dt_ms = have_prev_ ? t_ms - prev_t_ms_ : t_ms;

  std::string row;
  row.reserve(256 + snap.counters.size() * 48 + snap.gauges.size() * 40 +
              snap.histograms.size() * 96);
  row += "{\"t_ms\": ";
  append_u64(row, t_ms);
  row += ", \"dt_ms\": ";
  append_u64(row, dt_ms);

  row += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    // Deltas pair positionally with the previous snapshot when the series
    // set is unchanged (the common case: registration happens early); a
    // series that appeared mid-run falls back to a by-name lookup.
    const std::uint64_t prev = have_prev_ ? prev_.counter_or(name, 0) : 0;
    if (!first) row += ", ";
    first = false;
    row += '"';
    append_escaped(row, name);
    row += "\": {\"v\": ";
    append_u64(row, v);
    row += ", \"d\": ";
    append_u64(row, v >= prev ? v - prev : 0);
    row += '}';
  }

  row += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) row += ", ";
    first = false;
    row += '"';
    append_escaped(row, name);
    row += "\": ";
    append_num(row, v);
  }

  row += "}, \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;  // nothing observed yet — skip, not zeros
    const MetricsSnapshot::Hist* prev =
        have_prev_ ? prev_.histogram(h.name) : nullptr;
    const std::uint64_t prev_count = prev != nullptr ? prev->count : 0;
    if (!first) row += ", ";
    first = false;
    row += '"';
    append_escaped(row, h.name);
    row += "\": {\"count\": ";
    append_u64(row, h.count);
    row += ", \"d_count\": ";
    append_u64(row, h.count >= prev_count ? h.count - prev_count : 0);
    row += ", \"sum\": ";
    append_num(row, h.sum);
    row += ", \"p50\": ";
    append_num(row, h.p50);
    row += ", \"p99\": ";
    append_num(row, h.p99);
    row += '}';
  }
  row += "}}\n";

  FILE* f = static_cast<FILE*>(file_);
  if (std::fwrite(row.data(), 1, row.size(), f) == row.size()) {
    std::fflush(f);  // each row is a complete line even if we crash later
    std::lock_guard lock(mu_);
    ++rows_;
  }

  prev_ = snap;
  have_prev_ = true;
  prev_t_ms_ = t_ms;
}

}  // namespace mvgnn::obs
