#include "obs/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"

namespace mvgnn::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  char shorter[64];
  std::snprintf(shorter, sizeof shorter, "%.9g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

const char* goal_name(MetricGoal g) {
  switch (g) {
    case MetricGoal::Lower: return "lower";
    case MetricGoal::Higher: return "higher";
    case MetricGoal::None: break;
  }
  return nullptr;
}

MetricGoal goal_from(const std::string& s) {
  if (s == "lower") return MetricGoal::Lower;
  if (s == "higher") return MetricGoal::Higher;
  return MetricGoal::None;
}

struct ParsedMetric {
  double value = 0.0;
  MetricGoal goal = MetricGoal::None;
};

struct ParsedReport {
  std::string bench;
  std::vector<std::pair<std::string, ParsedMetric>> metrics;  // file order

  [[nodiscard]] const ParsedMetric* find(const std::string& key) const {
    for (const auto& [k, m] : metrics) {
      if (k == key) return &m;
    }
    return nullptr;
  }
};

ParsedReport parse_report(const std::string& text, const char* which) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(which) + " report: " + e.what());
  }
  if (!doc.is_object()) {
    throw std::runtime_error(std::string(which) +
                             " report: document is not an object");
  }
  const double schema = doc.num_or("schema", 0.0);
  if (schema != 1.0) {
    throw std::runtime_error(std::string(which) +
                             " report: unsupported schema version " +
                             fmt_double(schema) +
                             " (regenerate with the current BenchReport?)");
  }
  ParsedReport out;
  out.bench = doc.str_or("bench", "");
  const json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw std::runtime_error(std::string(which) +
                             " report: missing metrics object");
  }
  for (const auto& [key, v] : metrics->as_object()) {
    if (!v.is_object()) continue;
    ParsedMetric m;
    m.value = v.num_or("value", 0.0);
    m.goal = goal_from(v.str_or("goal", ""));
    out.metrics.emplace_back(key, m);
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReport::config(const std::string& key, double value) {
  config_.emplace_back(key, fmt_double(value));
}

void BenchReport::config(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  append_escaped(quoted, value);
  quoted += '"';
  config_.emplace_back(key, std::move(quoted));
}

void BenchReport::metric(const std::string& key, double value, MetricGoal goal,
                         const char* unit) {
  for (Metric& m : metrics_) {
    if (m.key == key) {
      m.value = value;
      m.goal = goal;
      m.unit = unit != nullptr ? unit : "";
      return;
    }
  }
  Metric m;
  m.key = key;
  m.value = value;
  m.goal = goal;
  m.unit = unit != nullptr ? unit : "";
  metrics_.push_back(std::move(m));
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n  \"bench\": \"";
  append_escaped(out, name_);
  out += "\",\n  \"schema\": 1,\n  \"config\": {";
  bool first = true;
  for (const auto& [key, rendered] : config_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, key);
    out += "\": ";
    out += rendered;
  }
  out += first ? "" : "\n  ";
  out += "},\n  \"metrics\": {";
  first = true;
  for (const Metric& m : metrics_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, m.key);
    out += "\": {\"value\": ";
    out += fmt_double(m.value);
    if (const char* g = goal_name(m.goal)) {
      out += ", \"goal\": \"";
      out += g;
      out += '"';
    }
    if (!m.unit.empty()) {
      out += ", \"unit\": \"";
      append_escaped(out, m.unit);
      out += '"';
    }
    out += '}';
  }
  out += first ? "" : "\n  ";
  out += "}\n}\n";
  return out;
}

bool BenchReport::write(const std::string& path) const {
  try {
    io::atomic_write_file(path,
                          [this](std::ostream& os) { os << to_json(); });
  } catch (const std::exception& e) {
    log_error("bench report write failed",
              {{"path", path}, {"what", e.what()}});
    return false;
  }
  return true;
}

CompareResult compare_bench_reports(const std::string& baseline_json,
                                    const std::string& fresh_json,
                                    const CompareOptions& opts) {
  const ParsedReport base = parse_report(baseline_json, "baseline");
  const ParsedReport fresh = parse_report(fresh_json, "fresh");

  CompareResult res;
  res.bench = base.bench;
  res.names_match = base.bench == fresh.bench;
  if (!res.names_match) res.ok = false;

  auto tol_for = [&](const std::string& key) {
    const auto it = opts.per_metric.find(key);
    return it != opts.per_metric.end() ? it->second : opts.tolerance;
  };
  auto selected = [&](const std::string& key) {
    return opts.keys.empty() ||
           std::find(opts.keys.begin(), opts.keys.end(), key) !=
               opts.keys.end();
  };

  for (const auto& [key, bm] : base.metrics) {
    if (!selected(key)) continue;
    MetricVerdict v;
    v.key = key;
    v.baseline = bm.value;
    v.goal = bm.goal;
    v.tolerance = tol_for(key);
    const ParsedMetric* fm = fresh.find(key);
    if (fm == nullptr) {
      v.status = MetricVerdict::Status::MissingFresh;
      res.ok = false;
      res.rows.push_back(std::move(v));
      continue;
    }
    v.fresh = fm->value;
    const double denom = std::max(std::fabs(bm.value), 1e-12);
    v.rel_change = (fm->value - bm.value) / denom;
    if (bm.goal == MetricGoal::None) {
      v.status = MetricVerdict::Status::Info;
    } else {
      // Positive `against` = moved against the goal.
      const double against =
          bm.goal == MetricGoal::Lower ? v.rel_change : -v.rel_change;
      if (against > v.tolerance) {
        v.status = MetricVerdict::Status::Regressed;
        res.ok = false;
      } else if (-against > v.tolerance) {
        v.status = MetricVerdict::Status::Improved;
      } else {
        v.status = MetricVerdict::Status::Pass;
      }
    }
    res.rows.push_back(std::move(v));
  }

  // Keys explicitly requested but absent from the baseline: fail loudly —
  // a typo here would otherwise turn the gate into a no-op.
  for (const std::string& key : opts.keys) {
    if (base.find(key) != nullptr) continue;
    MetricVerdict v;
    v.key = key;
    v.tolerance = tol_for(key);
    v.status = MetricVerdict::Status::MissingBase;
    res.ok = false;
    res.rows.push_back(std::move(v));
  }

  // Fresh-only metrics are informational (new metrics shouldn't fail old
  // baselines), but only when no key subset was requested.
  if (opts.keys.empty()) {
    for (const auto& [key, fm] : fresh.metrics) {
      if (base.find(key) != nullptr) continue;
      MetricVerdict v;
      v.key = key;
      v.fresh = fm.value;
      v.goal = fm.goal;
      v.status = MetricVerdict::Status::New;
      res.rows.push_back(std::move(v));
    }
  }
  return res;
}

std::string render_compare(const CompareResult& result) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "bench: %s%s\n", result.bench.c_str(),
                result.names_match ? "" : "  [BENCH NAME MISMATCH]");
  out += buf;
  out += "  metric                         baseline        fresh     change"
         "      tol  verdict\n";
  std::size_t regressions = 0;
  for (const MetricVerdict& v : result.rows) {
    const char* verdict = "";
    switch (v.status) {
      case MetricVerdict::Status::Pass: verdict = "ok"; break;
      case MetricVerdict::Status::Improved: verdict = "IMPROVED"; break;
      case MetricVerdict::Status::Regressed:
        verdict = "REGRESSED";
        ++regressions;
        break;
      case MetricVerdict::Status::Info: verdict = "info"; break;
      case MetricVerdict::Status::MissingFresh:
        verdict = "MISSING IN FRESH";
        ++regressions;
        break;
      case MetricVerdict::Status::MissingBase:
        verdict = "NOT IN BASELINE";
        ++regressions;
        break;
      case MetricVerdict::Status::New: verdict = "new"; break;
    }
    if (v.status == MetricVerdict::Status::MissingBase) {
      std::snprintf(buf, sizeof buf, "  %-28s %12s %12s %10s %8s  %s\n",
                    v.key.c_str(), "-", "-", "-", "-", verdict);
    } else if (v.status == MetricVerdict::Status::MissingFresh) {
      std::snprintf(buf, sizeof buf, "  %-28s %12.6g %12s %10s %8s  %s\n",
                    v.key.c_str(), v.baseline, "-", "-", "-", verdict);
    } else if (v.status == MetricVerdict::Status::New) {
      std::snprintf(buf, sizeof buf, "  %-28s %12s %12.6g %10s %8s  %s\n",
                    v.key.c_str(), "-", v.fresh, "-", "-", verdict);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %-28s %12.6g %12.6g %+9.1f%% %7.0f%%  %s\n",
                    v.key.c_str(), v.baseline, v.fresh, 100.0 * v.rel_change,
                    100.0 * v.tolerance, verdict);
    }
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "result: %s (%zu gating failure%s)\n",
                result.ok ? "PASS" : "FAIL", regressions,
                regressions == 1 ? "" : "s");
  out += buf;
  return out;
}

}  // namespace mvgnn::obs
