// Run-wide attribution: turns a span trace (+ optional metrics snapshot)
// into "where did the time go" — per-span-name statistics with self-time,
// a pipeline-stage breakdown, and cache/pool utilization. Backs the
// `mvgnn report` subcommand and the `--report` end-of-run summary.
//
// Self-time is the core quantity: a span's duration minus the durations of
// its direct children on the same thread. Because `TaskGroup::wait` helps
// with queued tasks, a blocked `parallel_for` span correctly excludes the
// sub-tasks it ran itself — they show up as its children. Summing self-time
// over all spans therefore partitions total traced time with no double
// counting, which is what lets the stage percentages sum to 100%.
//
// Stage attribution: each span's self-time is charged to its innermost
// enclosing `pipe.*` ancestor (a `gemm` under `pipe.profile` counts as
// Profile); spans with no pipeline ancestor on their thread are charged to
// the "(non-pipeline)" bucket. Cross-thread flow links (`flow_src`) are
// causal annotations, not containment, so attribution stays per-thread —
// worker time fanned out by a stage span is under that stage's `pipe.*`
// span on the worker only when the stage span itself ran there (the
// pipeline runs whole items per task, so in practice it is).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvgnn::obs {

/// Aggregate statistics for one span name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // sum of durations (nesting double-counts)
  std::uint64_t self_ns = 0;   // sum of self-times (partitions traced time)
  std::uint64_t p50_ns = 0;    // duration percentiles (nearest-rank)
  std::uint64_t p99_ns = 0;
};

/// One row of the pipeline-stage breakdown.
struct StageStat {
  std::string stage;  // "Parse", ..., "Featurize", "Embed", "(non-pipeline)"
  std::uint64_t self_ns = 0;
  std::uint64_t spans = 0;   // spans whose self-time landed here
  double pct = 0.0;          // share of total traced self-time; rows sum ~100
};

struct Report {
  std::uint64_t wall_ns = 0;       // max end - min start over all events
  std::uint64_t traced_self_ns = 0;  // sum of self-times (= sum of roots)
  std::uint64_t events = 0;
  std::uint32_t threads = 0;
  std::uint64_t flow_links = 0;    // events carrying a cross-thread link

  std::vector<SpanStat> spans;     // sorted by self_ns descending
  std::vector<StageStat> stages;   // pipeline order, then "(non-pipeline)"

  // Utilization, filled only when a metrics snapshot was supplied.
  bool has_metrics = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_mem_bytes = 0.0;
  double cache_disk_bytes = 0.0;
  std::uint64_t pool_executed = 0;
  std::uint64_t pool_helped = 0;
  // Task-latency quantiles; negative when the histogram is empty/absent.
  double task_p50_us = -1.0;
  double task_p99_us = -1.0;
  // `tensor.backend` gauge (kernel dispatch id, see docs/kernels.md);
  // -1 when the run predates the gauge or never touched the tensor layer.
  int tensor_backend_id = -1;
};

/// Aggregates `events` (as produced by TraceRecorder::events() or
/// parse_chrome_trace) into a Report. `metrics` may be nullptr. Safe on an
/// empty event list (returns an all-zero report).
Report build_report(const std::vector<SpanEvent>& events,
                    const MetricsSnapshot* metrics);

enum class ReportFormat { Text, Markdown, Json };

/// Renders a report as a one-screen text summary, a markdown document, or a
/// machine-readable JSON object.
std::string render_report(const Report& report, ReportFormat format);

/// A Chrome trace re-materialized as SpanEvents. `names` owns the string
/// storage the events point into (deque: stable addresses under growth).
struct ParsedTrace {
  std::deque<std::string> names;
  std::vector<SpanEvent> events;
};

/// Parses a Chrome trace_event document written by `to_chrome_json`. "X"
/// events become SpanEvents; flow "s"/"f" pairs are re-linked onto the
/// adopting slice (the "f" end binds to its start), so `flow_links` and the
/// producer thread/capture time survive the round trip. Throws
/// std::runtime_error on malformed input. Tolerates traces from other tools
/// as long as they use "X" phases.
ParsedTrace parse_chrome_trace(const std::string& json_text);

/// Parses a metrics snapshot written by `Registry::to_json()`/`write_json`.
/// Throws std::runtime_error on malformed input.
MetricsSnapshot parse_metrics_json(const std::string& json_text);

}  // namespace mvgnn::obs
