#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/atomic_file.hpp"

namespace mvgnn::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-unique nonzero span id from (thread, index) — no extra atomics.
/// 2^24 threads and 2^40 spans per thread before wraparound; good enough.
std::uint64_t span_id(std::uint32_t tid, std::int32_t index) {
  return (static_cast<std::uint64_t>(tid) + 1) << 40 |
         (static_cast<std::uint64_t>(index) + 1);
}

/// Minimal escaping; span names are identifiers but don't trust them.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*s) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", *s);
          out += buf;
        } else {
          out += *s;
        }
    }
  }
}

}  // namespace

TraceRecorder::ThreadBuf& TraceRecorder::thread_buf() {
  // One buffer per (thread, recorder). The shared_ptr keeps the buffer
  // alive past recorder export even if the thread exits first, and the
  // recorder keeps it alive past thread exit for the final export.
  thread_local std::shared_ptr<ThreadBuf> tl;
  thread_local TraceRecorder* tl_owner = nullptr;
  if (!tl || tl_owner != this) {
    auto buf = std::make_shared<ThreadBuf>();
    std::lock_guard lock(mu_);
    buf->tid = static_cast<std::uint32_t>(bufs_.size());
    bufs_.push_back(buf);
    tl = std::move(buf);
    tl_owner = this;
  }
  return *tl;
}

TraceContext TraceRecorder::current_context() {
  if (!enabled()) return {};
  ThreadBuf& buf = thread_buf();
  std::lock_guard lock(buf.mu);
  if (buf.open.empty()) return {};
  const SpanEvent& e = buf.events[static_cast<std::size_t>(buf.open.back())];
  // Captured while `e` is open, so ts_ns falls inside the producer slice —
  // exactly where Chrome expects the flow "s" event to bind.
  return TraceContext{e.id, buf.tid, now_ns()};
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mu);
    buf->events.clear();
    buf->open.clear();
  }
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard lock(mu_);
    bufs = bufs_;
  }
  std::vector<SpanEvent> out;
  for (const auto& buf : bufs) {
    std::lock_guard buf_lock(buf->mu);
    for (const SpanEvent& e : buf->events) {
      if (e.end_ns != 0) out.push_back(e);
    }
  }
  return out;
}

std::string TraceRecorder::to_chrome_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(128 + evs.size() * 128);
  out += "{\"traceEvents\": [\n";
  char buf[384];
  bool first = true;
  for (const SpanEvent& e : evs) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": \"";
    append_escaped(out, e.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"cat\": \"mvgnn\", \"ph\": \"X\", \"ts\": %.3f, "
                  "\"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"parent\": %d, \"depth\": %d",
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.end_ns - e.start_ns) / 1000.0, e.tid,
                  e.parent, e.depth);
    out += buf;
    for (std::uint32_t i = 0; i < e.nargs; ++i) {
      out += ", \"";
      append_escaped(out, e.args[i].key);
      std::snprintf(buf, sizeof buf, "\": %llu",
                    static_cast<unsigned long long>(e.args[i].value));
      out += buf;
    }
    out += "}}";
    // Cross-thread causality: a flow arrow from the submitting span's slice
    // to this one. The pair is keyed by this span's (unique) id, the "s"
    // end sits at the capture timestamp inside the producer slice, and the
    // "f" end (bp:"e") binds to the start of this slice — so every emitted
    // flow has both endpoints by construction.
    if (e.flow_src != 0) {
      std::snprintf(buf, sizeof buf,
                    ",\n  {\"name\": \"fanout\", \"cat\": \"mvgnn.flow\", "
                    "\"ph\": \"s\", \"id\": %llu, \"ts\": %.3f, \"pid\": 1, "
                    "\"tid\": %u},\n"
                    "  {\"name\": \"fanout\", \"cat\": \"mvgnn.flow\", "
                    "\"ph\": \"f\", \"bp\": \"e\", \"id\": %llu, "
                    "\"ts\": %.3f, \"pid\": 1, \"tid\": %u}",
                    static_cast<unsigned long long>(e.id),
                    static_cast<double>(e.flow_ts_ns) / 1000.0, e.flow_src_tid,
                    static_cast<unsigned long long>(e.id),
                    static_cast<double>(e.start_ns) / 1000.0, e.tid);
      out += buf;
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  // Atomic (tmp + rename) so a crash mid-export never leaves a torn trace.
  try {
    io::atomic_write_file(path,
                          [this](std::ostream& os) { os << to_chrome_json(); });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* r = new TraceRecorder();  // leaked: see header
  return *r;
}

void ScopedSpan::begin(TraceRecorder& r, const char* name,
                       const TraceContext* ctx) {
  TraceRecorder::ThreadBuf& buf = r.thread_buf();
  std::lock_guard lock(buf.mu);
  SpanEvent e;
  e.name = name;
  e.start_ns = now_ns();
  e.tid = buf.tid;
  e.parent = buf.open.empty() ? -1 : buf.open.back();
  e.depth = static_cast<std::int32_t>(buf.open.size());
  index_ = static_cast<std::int32_t>(buf.events.size());
  e.id = span_id(buf.tid, index_);
  if (ctx != nullptr && ctx->span_id != 0) {
    e.flow_src = ctx->span_id;
    e.flow_src_tid = ctx->tid;
    e.flow_ts_ns = ctx->ts_ns;
  }
  buf.events.push_back(e);
  buf.open.push_back(index_);
  buf_ = &buf;
}

void ScopedSpan::end() {
  std::lock_guard lock(buf_->mu);
  // The event can be gone if clear() raced with an open span; drop it.
  if (static_cast<std::size_t>(index_) < buf_->events.size()) {
    buf_->events[static_cast<std::size_t>(index_)].end_ns = now_ns();
  }
  if (!buf_->open.empty() && buf_->open.back() == index_) {
    buf_->open.pop_back();
  }
}

ScopedSpan& ScopedSpan::arg(const char* key, std::uint64_t value) {
  if (buf_ != nullptr) {
    std::lock_guard lock(buf_->mu);
    if (static_cast<std::size_t>(index_) < buf_->events.size()) {
      SpanEvent& e = buf_->events[static_cast<std::size_t>(index_)];
      if (e.nargs < SpanEvent::kMaxArgs) e.args[e.nargs++] = {key, value};
    }
  }
  return *this;
}

}  // namespace mvgnn::obs
