// Background metrics sampler: a thread that snapshots a Registry every N ms
// and appends one JSON object per line (JSONL) to a time-series file, so a
// run's evolution — epoch-over-epoch loss, cache hit-rate ramping up as the
// build warms, queue depth under fan-out — is visible instead of only the
// end-of-run cumulative totals.
//
// Row shape (one line each, timestamps relative to sampler start):
//
//   {"t_ms": 1200, "dt_ms": 200,
//    "counters":   {"cache.hits_total": {"v": 840, "d": 120}, ...},
//    "gauges":     {"thread_pool.queue_depth": 3, ...},
//    "histograms": {"thread_pool.task_latency_us":
//                   {"count": 512, "d_count": 40, "sum": 88201.5,
//                    "p50": 95.1, "p99": 1830.0}, ...}}
//
// `v` is the cumulative value, `d` the delta since the previous row (so a
// rate is d / dt_ms without the consumer keeping state). Histogram
// percentiles are cumulative-to-date, not per-window — the fixed-bucket
// histograms cannot be subtracted cheaply, and for dashboards the running
// quantile is what you want anyway. Empty histograms are skipped entirely.
//
// The sampler owns one thread; `stop()` (also run by the destructor) takes
// a final sample so short runs still produce at least one row. Sampling
// cost is one `Registry::snapshot()` per tick — mutex-protected copies of a
// few hundred series — which is noise at the supported intervals.
//
// Shutdown goes through a per-run obs::StopToken: each start() mints a
// fresh token and stop() latches it, so a stop() that races a concurrent
// start() either stops the launched thread or latches `stop_pending_` and
// the racing start() refuses to launch — a raced stop can never strand a
// running sampler thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/stop_token.hpp"

namespace mvgnn::obs {

class MetricsSampler {
 public:
  struct Options {
    /// Milliseconds between samples; clamped to >= 10 to keep a typo from
    /// turning the sampler into a busy loop.
    std::uint64_t interval_ms = 200;
    /// JSONL output path. Created (truncated) on start().
    std::string path;
    /// Registry to sample; nullptr = Registry::global().
    const Registry* registry = nullptr;
  };

  explicit MetricsSampler(Options opts);
  /// Stops and joins if still running.
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Opens the output file and launches the sampling thread. Returns false
  /// (with a logged error) if the file cannot be opened, or if a
  /// concurrent stop() already latched this run — the sampler is then
  /// inert and stop() is a no-op. A sequential start() after a completed
  /// stop() begins a fresh run.
  bool start();

  /// Takes one final sample, stops the thread and flushes/closes the file.
  /// Idempotent. When no thread is running, latches so that a start() it
  /// raced with refuses to launch instead of leaving an unstoppable
  /// thread behind.
  void stop();

  [[nodiscard]] bool running() const;
  /// Rows appended so far (final value is stable after stop()).
  [[nodiscard]] std::uint64_t rows_written() const;

 private:
  void loop();
  void sample_once(std::uint64_t t_ms);

  Options opts_;
  std::thread thread_;
  mutable std::mutex mu_;
  /// Per-run shutdown latch; minted by start(), latched by stop(). The
  /// loop holds its own shared_ptr so the token outlives any racing owner.
  std::shared_ptr<StopToken> stop_;
  /// Set by a stop() that found no run to stop; the next start() consumes
  /// it and refuses to launch (closing the stop-raced-with-start window).
  bool stop_pending_ = false;
  bool running_ = false;
  std::uint64_t rows_ = 0;

  // Thread-private state (only the sampler thread and post-join stop()
  // touch these).
  void* file_ = nullptr;  // FILE*, void* keeps <cstdio> out of the header
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t prev_t_ms_ = 0;
};

}  // namespace mvgnn::obs
