// One-shot cooperative shutdown latch shared by the background loops in
// this repo (the metrics sampler, the serve daemon's accept/connection/
// batcher threads).
//
// The idiom these loops share: a worker ticks on an interval, checks "was I
// asked to stop?" each tick, and the owner wants `request_stop()` to both
// flip the flag and wake any interval wait immediately. Before this helper
// each loop hand-rolled the mutex + condition_variable + bool triple, and
// the sampler's copy had a real bug: a `stop()` that raced an in-progress
// `start()` could observe "nothing to stop", return as a no-op, and leave
// the freshly launched thread running with nobody left to join it.
//
// A StopToken is deliberately one-shot: it latches. A component that can be
// restarted allocates a fresh token per run (see obs::MetricsSampler), so
// "this run was told to stop" can never be un-observed by a racing starter
// — whoever holds the token for run N stops run N, and a starter that lost
// the race sees the latch and refuses to launch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace mvgnn::obs {

class StopToken {
 public:
  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Latches the stop request and wakes every `wait_for_stop` sleeper.
  /// Idempotent; safe from signal-adjacent contexts only via the owning
  /// thread (it takes a mutex — call it from normal code, not handlers).
  void request_stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Lock-free check for hot loops: one relaxed-ish atomic load.
  [[nodiscard]] bool stop_requested() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Sleeps up to `timeout`, waking early when the stop latch flips.
  /// Returns stop_requested() — `true` means "stop now", `false` means the
  /// interval elapsed and the loop should tick again.
  template <class Rep, class Period>
  bool wait_for_stop(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [this] {
      return stopped_.load(std::memory_order_relaxed);
    });
    return stopped_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::atomic<bool> stopped_{false};
};

}  // namespace mvgnn::obs
