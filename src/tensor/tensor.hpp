// Reverse-mode autograd tensor.
//
// A Tensor is a cheap handle (shared_ptr) to a Node holding a float32 buffer
// plus the closure that propagates gradients to its inputs. Graphs are built
// eagerly by the ops in ops.hpp; Tensor::backward() runs a topological sweep
// from a scalar root. Shapes are 1-D or 2-D (all this project needs).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/rng.hpp"

namespace mvgnn::ag {

struct TensorError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Shape {
  std::size_t rows = 0;
  std::size_t cols = 1;  // 1 for vectors/scalars
  [[nodiscard]] std::size_t numel() const { return rows * cols; }
  friend bool operator==(const Shape&, const Shape&) = default;
  [[nodiscard]] std::string str() const {
    return "[" + std::to_string(rows) + "," + std::to_string(cols) + "]";
  }
};

class Tensor;

namespace detail {

struct Node {
  Shape shape;
  std::vector<float> value;
  std::vector<float> grad;   // lazily sized on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  std::function<void(Node&)> backward;  // pulls node.grad into inputs' grads

  void ensure_grad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  // ---- creation --------------------------------------------------------
  static Tensor zeros(Shape s, bool requires_grad = false);
  static Tensor full(Shape s, float v, bool requires_grad = false);
  /// Kaiming-style normal init scaled by `scale` (e.g. sqrt(2/fan_in)).
  static Tensor randn(Shape s, par::Rng& rng, float scale = 1.0f,
                      bool requires_grad = true);
  static Tensor from_data(Shape s, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor scalar(float v, bool requires_grad = false) {
    return from_data({1, 1}, {v}, requires_grad);
  }

  // ---- access ----------------------------------------------------------
  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Shape& shape() const { return node_->shape; }
  [[nodiscard]] std::size_t rows() const { return node_->shape.rows; }
  [[nodiscard]] std::size_t cols() const { return node_->shape.cols; }
  [[nodiscard]] std::size_t numel() const { return node_->shape.numel(); }
  [[nodiscard]] float* data() { return node_->value.data(); }
  [[nodiscard]] const float* data() const { return node_->value.data(); }
  [[nodiscard]] float item() const {
    if (numel() != 1) throw TensorError("item() on non-scalar " + shape().str());
    return node_->value[0];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return node_->value[r * cols() + c];
  }
  [[nodiscard]] bool requires_grad() const { return node_->requires_grad; }
  /// Gradient buffer (zeros until backward touches this node).
  [[nodiscard]] const std::vector<float>& grad() const {
    const_cast<detail::Node*>(node_.get())->ensure_grad();
    return node_->grad;
  }
  void zero_grad() {
    if (node_) node_->grad.assign(node_->value.size(), 0.0f);
  }
  /// Detaches from history: parameters call this after an optimizer step is
  /// not needed (values are updated in place), but datasets use it to wrap
  /// constant inputs cheaply.
  void set_requires_grad(bool rg) { node_->requires_grad = rg; }

  /// Runs reverse-mode accumulation from this scalar.
  void backward();

  [[nodiscard]] std::shared_ptr<detail::Node> node() const { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> n) : node_(std::move(n)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

}  // namespace mvgnn::ag
