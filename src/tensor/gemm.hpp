// Raw float32 GEMM kernels used by the autograd matmul ops.
//
// C (m x n) += / = A (m x k) * B (k x n), row-major, optionally with either
// input logically transposed. Blocked over rows and parallelized on the
// global thread pool; the inner loop is written k-outer so the compiler can
// vectorize the unit-stride n-loop.
#pragma once

#include <cstddef>

namespace mvgnn::tensor {

/// C = A * B. `ta`/`tb` interpret A/B as transposed (their storage shapes
/// are then k x m / n x k respectively).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool ta = false, bool tb = false,
          bool accumulate = false);

}  // namespace mvgnn::tensor
