// Drivers for the raw float32 kernels used by the autograd ops.
//
// C (m x n) += / = A (m x k) * B (k x n), row-major, optionally with either
// input logically transposed, plus the CSR spmm. The actual arithmetic lives
// in a runtime-dispatched KernelBackend (src/tensor/backend/, docs/
// kernels.md); the drivers here own output zeroing, obs metrics, and the
// par::TaskGroup fan-out — GEMM over row/N-panels, spmm over CSR row
// ranges. An optional fused Epilogue (bias add, tanh) runs in the backend's
// tail over the still-hot output block instead of as separate passes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "parallel/thread_pool.hpp"
#include "tensor/backend/backend.hpp"

namespace mvgnn::tensor {

/// C = A * B (+ epilogue). `ta`/`tb` interpret A/B as transposed (their
/// storage shapes are then k x m / n x k respectively). A non-empty `ep`
/// requires accumulate=false. The pool only affects how the output is split
/// into tasks, never the results: a fixed backend is bit-identical across
/// pool sizes (see backend.hpp).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool ta = false, bool tb = false,
          bool accumulate = false, const Epilogue& ep = {},
          par::ThreadPool& pool = par::ThreadPool::global());

/// out[rows x cols] = / += A * X for CSR A (row_ptr size rows+1). `tanh`
/// fuses the activation into each finished row and requires
/// accumulate=false. Used with A's cached transpose this is also the
/// backward spmm-transpose product.
void spmm_csr(const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
              const float* vals, std::size_t rows, const float* x, float* out,
              std::size_t cols, bool accumulate = false, bool tanh = false,
              par::ThreadPool& pool = par::ThreadPool::global());

}  // namespace mvgnn::tensor
