// Compressed-sparse-row float32 matrix.
//
// A CsrMatrix is a cheap shared handle to immutable CSR storage (row
// pointers / column indices / values). The model stack uses it for graph
// adjacencies: per-loop sub-PEGs are tiny and sparse, so message passing
// through ag::spmm costs O(nnz * cols) instead of the O(rows^2 * cols) a
// dense adjacency matmul pays, and block-diagonal concatenation batches
// many graphs into one multiply without materializing the (mostly zero)
// off-diagonal blocks. The transpose needed by spmm's backward pass is
// built once per matrix on first use and cached behind the handle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvgnn::ag {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate triplets. Duplicate (row, col) entries are
  /// summed; entries are stored in (row, ascending col) order.
  static CsrMatrix from_coo(std::size_t rows, std::size_t cols,
                            const std::vector<std::uint32_t>& r,
                            const std::vector<std::uint32_t>& c,
                            const std::vector<float>& v);

  /// Compresses a dense row-major tensor, keeping entries with |x| > eps.
  static CsrMatrix from_dense(const Tensor& dense, float eps = 0.0f);

  /// Block-diagonal concatenation (graph batching): block b occupies rows
  /// and columns offset by the sum of the preceding blocks' sizes.
  static CsrMatrix block_diag(const std::vector<const CsrMatrix*>& blocks);

  [[nodiscard]] bool defined() const { return rep_ != nullptr; }
  [[nodiscard]] std::size_t rows() const { return rep_ ? rep_->rows : 0; }
  [[nodiscard]] std::size_t cols() const { return rep_ ? rep_->cols : 0; }
  [[nodiscard]] std::size_t nnz() const {
    return rep_ ? rep_->col_idx.size() : 0;
  }
  /// Size rows()+1; entries of row r live in [row_ptr[r], row_ptr[r+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const {
    return rep_->row_ptr;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const {
    return rep_->col_idx;
  }
  [[nodiscard]] const std::vector<float>& values() const { return rep_->vals; }

  /// Materializes the dense [rows, cols] tensor (tests, fallbacks).
  [[nodiscard]] Tensor to_dense() const;

  /// The transposed matrix, built on first call and cached (spmm's backward
  /// runs dX = A^T dY row-parallel over the transpose). Thread-safe.
  [[nodiscard]] CsrMatrix transposed() const;

 private:
  struct Rep {
    std::size_t rows = 0, cols = 0;
    std::vector<std::uint32_t> row_ptr{0};
    std::vector<std::uint32_t> col_idx;
    std::vector<float> vals;
    mutable std::once_flag t_once;
    mutable std::shared_ptr<const Rep> t;  // cached transpose
  };

  explicit CsrMatrix(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  static std::shared_ptr<Rep> transpose_rep(const Rep& a);

  std::shared_ptr<const Rep> rep_;
};

}  // namespace mvgnn::ag
