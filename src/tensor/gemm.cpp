#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace mvgnn::tensor {

namespace {

/// Plain row-major kernel for one row block, k-outer so the n-loop is a
/// fused multiply-add over contiguous memory.
void gemm_nn_block(const float* a, const float* b, float* c, std::size_t r0,
                   std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;  // sparse-ish adjacency rows are common
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

struct GemmMetrics {
  obs::Counter& calls = obs::Registry::global().counter("gemm.calls_total");
  obs::Counter& flops = obs::Registry::global().counter("gemm.flops_total");
  obs::Counter& parallel_calls =
      obs::Registry::global().counter("gemm.parallel_calls_total");

  static GemmMetrics& get() {
    static GemmMetrics m;
    return m;
  }
};

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool ta, bool tb, bool accumulate) {
  obs::ScopedSpan span("gemm");
  span.arg("m", m).arg("k", k).arg("n", n);
  GemmMetrics& metrics = GemmMetrics::get();
  metrics.calls.add(1);
  metrics.flops.add(static_cast<std::uint64_t>(2) * m * k * n);

  // Normalize to the NN case by materializing transposed inputs; the
  // matrices in this project are small enough (<= a few thousand rows) that
  // an explicit transpose is cheaper than strided inner loops.
  std::vector<float> abuf, bbuf;
  if (ta) {
    abuf.resize(m * k);
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t i = 0; i < m; ++i) abuf[i * k + p] = a[p * m + i];
    }
    a = abuf.data();
  }
  if (tb) {
    bbuf.resize(k * n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) bbuf[p * n + j] = b[j * k + p];
    }
    b = bbuf.data();
  }
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));

  const std::size_t work = m * k * n;
  if (work < (1u << 16)) {
    gemm_nn_block(a, b, c, 0, m, k, n);
    return;
  }
  metrics.parallel_calls.add(1);
  par::parallel_for_blocked(
      0, m,
      [&](std::size_t r0, std::size_t r1) {
        OBS_SPAN("gemm.panel");
        gemm_nn_block(a, b, c, r0, r1, k, n);
      },
      par::ThreadPool::global(), /*grain=*/std::max<std::size_t>(1, (1u << 16) / std::max<std::size_t>(1, k * n)));
}

}  // namespace mvgnn::tensor
