#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace mvgnn::tensor {

namespace {

struct GemmMetrics {
  obs::Counter& calls = obs::Registry::global().counter("gemm.calls_total");
  obs::Counter& flops = obs::Registry::global().counter("gemm.flops_total");
  obs::Counter& parallel_calls =
      obs::Registry::global().counter("gemm.parallel_calls_total");

  static GemmMetrics& get() {
    static GemmMetrics m;
    return m;
  }
};

struct SpmmMetrics {
  obs::Counter& calls = obs::Registry::global().counter("tensor.spmm_total");
  obs::Counter& flops =
      obs::Registry::global().counter("tensor.spmm_flops_total");

  static SpmmMetrics& get() {
    static SpmmMetrics m;
    return m;
  }
};

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool ta, bool tb, bool accumulate,
          const Epilogue& ep, par::ThreadPool& pool) {
  if (m == 0 || n == 0) return;
  if (accumulate && !ep.empty()) {
    throw std::invalid_argument("gemm: fused epilogue requires accumulate=false");
  }
  obs::ScopedSpan span("gemm");
  span.arg("m", m).arg("k", k).arg("n", n);
  GemmMetrics& metrics = GemmMetrics::get();
  metrics.calls.add(1);
  metrics.flops.add(static_cast<std::uint64_t>(2) * m * k * n);

  const KernelBackend& be = backend::active();
  const GemmArgs args{a, b, c, m, k, n, ta, tb, ep};
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));

  const std::size_t work = m * k * n;
  if (work < (1u << 16) || pool.size() <= 1) {
    be.gemm_block(args, 0, m, 0, n);
    return;
  }
  metrics.parallel_calls.add(1);
  // Fan out over whichever output axis is longer: N-panels for the wide
  // activations, row ranges for the tall GNN node blocks. Either way each
  // output element belongs to exactly one task, and the backends accumulate
  // K in a block-independent order, so the split never changes the bits.
  if (m >= n) {
    const std::size_t grain =
        std::max<std::size_t>(1, (1u << 16) / std::max<std::size_t>(1, k * n));
    par::parallel_for_blocked(
        0, m,
        [&](std::size_t r0, std::size_t r1) {
          OBS_SPAN("gemm.panel");
          be.gemm_block(args, r0, r1, 0, n);
        },
        pool, grain);
  } else {
    const std::size_t grain =
        std::max<std::size_t>(1, (1u << 16) / std::max<std::size_t>(1, k * m));
    par::parallel_for_blocked(
        0, n,
        [&](std::size_t c0, std::size_t c1) {
          OBS_SPAN("gemm.panel");
          be.gemm_block(args, 0, m, c0, c1);
        },
        pool, grain);
  }
}

void spmm_csr(const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
              const float* vals, std::size_t rows, const float* x, float* out,
              std::size_t cols, bool accumulate, bool tanh,
              par::ThreadPool& pool) {
  if (rows == 0 || cols == 0) return;
  if (accumulate && tanh) {
    throw std::invalid_argument("spmm: fused tanh requires accumulate=false");
  }
  SpmmMetrics& metrics = SpmmMetrics::get();
  metrics.calls.add(1);
  metrics.flops.add(static_cast<std::uint64_t>(2) * row_ptr[rows] * cols);

  const KernelBackend& be = backend::active();
  const SpmmArgs args{row_ptr, col_idx, vals, x, out, cols, tanh};
  if (!accumulate) std::memset(out, 0, rows * cols * sizeof(float));
  // Each output row is written by exactly one worker, so no synchronization
  // is needed. The grain adapts to the row width so tiny feature dims still
  // form blocks worth shipping to the pool.
  const std::size_t grain =
      std::max<std::size_t>(16, 4096 / std::max<std::size_t>(1, cols));
  par::parallel_for_blocked(
      0, rows,
      [&](std::size_t r0, std::size_t r1) { be.spmm_rows(args, r0, r1); },
      pool, grain);
}

}  // namespace mvgnn::tensor
