#include "tensor/ops.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/gemm.hpp"

namespace mvgnn::ag {

namespace {

using detail::Node;

[[noreturn]] void shape_fail(const char* op, const Tensor& a, const Tensor& b) {
  throw TensorError(std::string(op) + ": incompatible shapes " +
                    a.shape().str() + " and " + b.shape().str());
}

bool any_rg(const std::vector<Tensor>& inputs) {
  for (const Tensor& t : inputs) {
    if (t.requires_grad()) return true;
  }
  return false;
}

/// Creates an op node with `inputs` and `bw`; value must be filled by the
/// caller through the returned tensor's data().
Tensor make_op(Shape s, std::vector<Tensor> inputs,
               std::function<void(Node&)> bw) {
  auto n = std::make_shared<Node>();
  n->shape = s;
  n->value.assign(s.numel(), 0.0f);
  n->requires_grad = any_rg(inputs);
  for (const Tensor& t : inputs) n->inputs.push_back(t.node());
  if (n->requires_grad) n->backward = std::move(bw);
  return Tensor(std::move(n));
}

/// Accumulates g into input i of `self` if that input wants gradients.
Node* grad_target(Node& self, std::size_t i) {
  Node* in = self.inputs[i].get();
  if (!in->requires_grad) return nullptr;
  in->ensure_grad();
  return in;
}

}  // namespace

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) shape_fail("matmul", a, b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = make_op({m, n}, {a, b}, [m, k, n](Node& self) {
    const float* g = self.grad.data();
    const float* av = self.inputs[0]->value.data();
    const float* bv = self.inputs[1]->value.data();
    if (Node* ia = grad_target(self, 0)) {
      // dA = dC * B^T
      tensor::gemm(g, bv, ia->grad.data(), m, n, k, false, true, true);
    }
    if (Node* ib = grad_target(self, 1)) {
      // dB = A^T * dC
      tensor::gemm(av, g, ib->grad.data(), k, m, n, true, false, true);
    }
  });
  tensor::gemm(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

namespace {

/// Shared body of matmul_bias / matmul_bias_tanh: C = A * op(W) + bias
/// (+ tanh), one GEMM with the fused epilogue and exact gradients — no
/// materialized `matmul -> add -> tanh` intermediates. `tw` interprets W as
/// transposed ([n,k] storage), which is what the conv1-as-GEMM head wants.
Tensor matmul_bias_impl(const Tensor& a, const Tensor& w, const Tensor& bias,
                        bool tw, bool tanh) {
  const std::size_t m = a.rows(), k = a.cols();
  const std::size_t wk = tw ? w.cols() : w.rows();
  const std::size_t n = tw ? w.rows() : w.cols();
  if (k != wk) shape_fail("matmul_bias", a, w);
  if (bias.numel() != n) shape_fail("matmul_bias(bias)", w, bias);
  Tensor out = make_op({m, n}, {a, w, bias}, [m, k, n, tw, tanh](Node& self) {
    // dz = g ⊙ (1 - y²) through the fused tanh; g itself otherwise.
    const float* g = self.grad.data();
    std::vector<float> dz;
    if (tanh) {
      dz.resize(m * n);
      for (std::size_t i = 0; i < dz.size(); ++i) {
        const float y = self.value[i];
        dz[i] = self.grad[i] * (1.0f - y * y);
      }
      g = dz.data();
    }
    const float* av = self.inputs[0]->value.data();
    const float* wv = self.inputs[1]->value.data();
    if (Node* ia = grad_target(self, 0)) {
      // dA = dz * op(W)^T — with tw the stored [n,k] W *is* op(W)^T.
      tensor::gemm(g, wv, ia->grad.data(), m, n, k, false, !tw, true);
    }
    if (Node* iw = grad_target(self, 1)) {
      if (tw) {
        // dW[n,k] = dz^T * A
        tensor::gemm(g, av, iw->grad.data(), n, m, k, true, false, true);
      } else {
        // dW[k,n] = A^T * dz
        tensor::gemm(av, g, iw->grad.data(), k, m, n, true, false, true);
      }
    }
    if (Node* ib = grad_target(self, 2)) {
      for (std::size_t r0 = 0; r0 < m * n; r0 += n) {
        const float* gr = g + r0;
        for (std::size_t j = 0; j < n; ++j) ib->grad[j] += gr[j];
      }
    }
  });
  tensor::Epilogue ep;
  ep.bias_col = bias.data();
  ep.tanh = tanh;
  tensor::gemm(a.data(), w.data(), out.data(), m, k, n, false, tw, false, ep);
  return out;
}

}  // namespace

Tensor matmul_bias(const Tensor& a, const Tensor& w, const Tensor& bias,
                   bool tw) {
  return matmul_bias_impl(a, w, bias, tw, /*tanh=*/false);
}

Tensor matmul_bias_tanh(const Tensor& a, const Tensor& w, const Tensor& bias,
                        bool tw) {
  return matmul_bias_impl(a, w, bias, tw, /*tanh=*/true);
}

namespace {

/// Routes a CSR product through the dispatched backend driver.
/// `accumulate=true` for gradient targets (they sum over consumers).
void spmm_call(const CsrMatrix& a, const float* x, float* out,
               std::size_t cols, bool accumulate, bool tanh = false) {
  tensor::spmm_csr(a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                   a.rows(), x, out, cols, accumulate, tanh);
}

void check_spmm_shapes(const CsrMatrix& a, const Tensor& x) {
  if (!a.defined() || a.cols() != x.rows()) {
    throw TensorError("spmm: incompatible shapes [" + std::to_string(a.rows()) +
                      "," + std::to_string(a.cols()) + "] and " +
                      x.shape().str());
  }
}

}  // namespace

Tensor spmm(const CsrMatrix& a, const Tensor& x) {
  check_spmm_shapes(a, x);
  obs::ScopedSpan span("tensor.spmm");
  span.arg("rows", a.rows()).arg("nnz", a.nnz()).arg("cols", x.cols());
  const std::size_t m = a.rows(), n = x.cols();
  Tensor out = make_op({m, n}, {x}, [a, n](Node& self) {
    if (Node* ix = grad_target(self, 0)) {
      spmm_call(a.transposed(), self.grad.data(), ix->grad.data(), n,
                /*accumulate=*/true);
    }
  });
  spmm_call(a, x.data(), out.data(), n, /*accumulate=*/false);
  return out;
}

Tensor spmm_tanh(const CsrMatrix& a, const Tensor& x) {
  check_spmm_shapes(a, x);
  obs::ScopedSpan span("tensor.spmm");
  span.arg("rows", a.rows()).arg("nnz", a.nnz()).arg("cols", x.cols());
  const std::size_t m = a.rows(), n = x.cols();
  Tensor out = make_op({m, n}, {x}, [a, n](Node& self) {
    if (Node* ix = grad_target(self, 0)) {
      // dX = A^T (g ⊙ (1 - y²)) over the cached transpose.
      std::vector<float> dz(self.value.size());
      for (std::size_t i = 0; i < dz.size(); ++i) {
        const float y = self.value[i];
        dz[i] = self.grad[i] * (1.0f - y * y);
      }
      spmm_call(a.transposed(), dz.data(), ix->grad.data(), n,
                /*accumulate=*/true);
    }
  });
  spmm_call(a, x.data(), out.data(), n, /*accumulate=*/false, /*tanh=*/true);
  return out;
}

Tensor transpose(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  Tensor out = make_op({c, r}, {a}, [r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += self.grad[j * r + i];
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out.data()[j * r + i] = a.at(i, j);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  const bool bias = (b.rows() == 1 && b.cols() == a.cols() &&
                     !(a.shape() == b.shape()));
  if (!bias && !(a.shape() == b.shape())) shape_fail("add", a, b);
  const std::size_t n = a.numel(), c = a.cols();
  Tensor out = make_op(a.shape(), {a, b}, [n, c, bias](Node& self) {
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      if (bias) {
        for (std::size_t r0 = 0; r0 < n; r0 += c) {
          const float* g = self.grad.data() + r0;
          for (std::size_t j = 0; j < c; ++j) ib->grad[j] += g[j];
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) ib->grad[i] += self.grad[i];
      }
    }
  });
  if (bias) {
    for (std::size_t r0 = 0; r0 < n; r0 += c) {
      float* o = out.data() + r0;
      const float* av = a.data() + r0;
      for (std::size_t j = 0; j < c; ++j) o[j] = av[j] + b.data()[j];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out.data()[i] = a.data()[i] + b.data()[i];
    }
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) shape_fail("sub", a, b);
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a, b}, [n](Node& self) {
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      for (std::size_t i = 0; i < n; ++i) ib->grad[i] -= self.grad[i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] - b.data()[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) shape_fail("mul", a, b);
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a, b}, [n](Node& self) {
    const float* av = self.inputs[0]->value.data();
    const float* bv = self.inputs[1]->value.data();
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i] * bv[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      for (std::size_t i = 0; i < n; ++i) ib->grad[i] += self.grad[i] * av[i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a}, [n, s](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[i] * s;
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * s;
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor unary_ew(const Tensor& a, Fwd fwd, Bwd bwd_from_out) {
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a}, [n, bwd_from_out](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) {
        in->grad[i] += self.grad[i] * bwd_from_out(self.value[i],
                                                   self.inputs[0]->value[i]);
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = fwd(a.data()[i]);
  return out;
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float y, float) { return y > 0.0f ? 1.0f : 0.0f; });
}

// fast_tanh (branchless range-reduced exp2 polynomial, ~1e-7 max error)
// moved to tensor/backend/act.hpp in PR 8 so the elementwise op and the
// fused GEMM/spmm epilogues share one numerics policy.
using tensor::backend::fast_tanh;

Tensor tanh_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return fast_tanh(x); },
      [](float y, float) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y, float) { return y * (1.0f - y); });
}

Tensor exp_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return std::exp(x); },
      [](float y, float) { return y; });
}

Tensor log_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float, float x) { return 1.0f / std::max(x, 1e-12f); });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor sum(const Tensor& a) {
  const std::size_t n = a.numel();
  Tensor out = make_op({1, 1}, {a}, [n](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[0];
    }
  });
  out.data()[0] = std::accumulate(a.data(), a.data() + n, 0.0f);
  return out;
}

Tensor mean(const Tensor& a) {
  return scale(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor mean_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  const float inv = 1.0f / static_cast<float>(std::max<std::size_t>(1, r));
  Tensor out = make_op({1, c}, {a}, [r, c, inv](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += self.grad[j] * inv;
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out.data()[j] += a.at(i, j) * inv;
  }
  return out;
}

Tensor max_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  if (r == 0) throw TensorError("max_rows on empty tensor");
  auto argmax = std::make_shared<std::vector<std::uint32_t>>(c, 0);
  Tensor out = make_op({1, c}, {a}, [c, argmax](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t j = 0; j < c; ++j) {
        in->grad[(*argmax)[j] * c + j] += self.grad[j];
      }
    }
  });
  for (std::size_t j = 0; j < c; ++j) {
    float best = a.at(0, j);
    std::uint32_t bi = 0;
    for (std::size_t i = 1; i < r; ++i) {
      if (a.at(i, j) > best) {
        best = a.at(i, j);
        bi = static_cast<std::uint32_t>(i);
      }
    }
    out.data()[j] = best;
    (*argmax)[j] = bi;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape s) {
  if (s.numel() != a.numel()) {
    throw TensorError("reshape: numel mismatch " + a.shape().str() + " -> " +
                      s.str());
  }
  const std::size_t n = a.numel();
  Tensor out = make_op(s, {a}, [n](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[i];
    }
  });
  std::copy(a.data(), a.data() + n, out.data());
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) shape_fail("concat_cols", a, b);
  const std::size_t r = a.rows(), ca = a.cols(), cb = b.cols();
  Tensor out = make_op({r, ca + cb}, {a, b}, [r, ca, cb](Node& self) {
    Node* ia = grad_target(self, 0);
    Node* ib = grad_target(self, 1);
    for (std::size_t i = 0; i < r; ++i) {
      const float* g = self.grad.data() + i * (ca + cb);
      if (ia) {
        for (std::size_t j = 0; j < ca; ++j) ia->grad[i * ca + j] += g[j];
      }
      if (ib) {
        for (std::size_t j = 0; j < cb; ++j) ib->grad[i * cb + j] += g[ca + j];
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    float* o = out.data() + i * (ca + cb);
    std::copy(a.data() + i * ca, a.data() + (i + 1) * ca, o);
    std::copy(b.data() + i * cb, b.data() + (i + 1) * cb, o + ca);
  }
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) shape_fail("concat_rows", a, b);
  const std::size_t na = a.numel(), nb = b.numel();
  Tensor out = make_op({a.rows() + b.rows(), a.cols()}, {a, b},
                       [na, nb](Node& self) {
                         if (Node* ia = grad_target(self, 0)) {
                           for (std::size_t i = 0; i < na; ++i) {
                             ia->grad[i] += self.grad[i];
                           }
                         }
                         if (Node* ib = grad_target(self, 1)) {
                           for (std::size_t i = 0; i < nb; ++i) {
                             ib->grad[i] += self.grad[na + i];
                           }
                         }
                       });
  std::copy(a.data(), a.data() + na, out.data());
  std::copy(b.data(), b.data() + nb, out.data() + na);
  return out;
}

Tensor slice_rows(const Tensor& a, std::size_t r0, std::size_t r1) {
  if (r1 > a.rows() || r0 > r1) {
    throw TensorError("slice_rows: bad range on " + a.shape().str());
  }
  const std::size_t c = a.cols(), r = r1 - r0;
  Tensor out = make_op({r, c}, {a}, [r0, r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r * c; ++i) {
        in->grad[r0 * c + i] += self.grad[i];
      }
    }
  });
  std::copy(a.data() + r0 * c, a.data() + r1 * c, out.data());
  return out;
}

Tensor slice_cols(const Tensor& a, std::size_t c0, std::size_t c1) {
  if (c1 > a.cols() || c0 > c1) {
    throw TensorError("slice_cols: bad range on " + a.shape().str());
  }
  const std::size_t r = a.rows(), ca = a.cols(), c = c1 - c0;
  Tensor out = make_op({r, c}, {a}, [r, ca, c0, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * ca + c0 + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out.data()[i * c + j] = a.at(i, c0 + j);
    }
  }
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::uint32_t>& rows) {
  const std::size_t c = a.cols();
  for (const std::uint32_t r : rows) {
    if (r >= a.rows()) throw TensorError("gather_rows: index out of range");
  }
  auto idx = std::make_shared<std::vector<std::uint32_t>>(rows);
  Tensor out = make_op({rows.size(), c}, {a}, [c, idx](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < idx->size(); ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[(*idx)[i] * c + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(a.data() + rows[i] * c, a.data() + (rows[i] + 1) * c,
              out.data() + i * c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Regularization / classification
// ---------------------------------------------------------------------------

Tensor dropout(const Tensor& a, float p, bool training, par::Rng& rng) {
  if (!training || p <= 0.0f) return a;
  const std::size_t n = a.numel();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep = 1.0f - p;
  for (std::size_t i = 0; i < n; ++i) {
    (*mask)[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor out = make_op(a.shape(), {a}, [n, mask](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) {
        in->grad[i] += self.grad[i] * (*mask)[i];
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * (*mask)[i];
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  Tensor out = make_op(a.shape(), {a}, [r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        const float* y = self.value.data() + i * c;
        const float* g = self.grad.data() + i * c;
        float dot = 0.0f;
        for (std::size_t j = 0; j < c; ++j) dot += y[j] * g[j];
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += y[j] * (g[j] - dot);
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    const float* x = a.data() + i * c;
    float* y = out.data() + i * c;
    const float mx = *std::max_element(x, x + c);
    float z = 0.0f;
    for (std::size_t j = 0; j < c; ++j) z += (y[j] = std::exp(x[j] - mx));
    for (std::size_t j = 0; j < c; ++j) y[j] /= z;
  }
  return out;
}

Tensor cross_entropy_logits(const Tensor& logits,
                            const std::vector<int>& labels) {
  const std::size_t r = logits.rows(), c = logits.cols();
  if (labels.size() != r) {
    throw TensorError("cross_entropy_logits: label count mismatch");
  }
  // Cache the softmax for backward.
  auto probs = std::make_shared<std::vector<float>>(r * c);
  auto lab = std::make_shared<std::vector<int>>(labels);
  Tensor out = make_op({1, 1}, {logits}, [r, c, probs, lab](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      const float g = self.grad[0] / static_cast<float>(r);
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          const float onehot = (static_cast<int>(j) == (*lab)[i]) ? 1.0f : 0.0f;
          in->grad[i * c + j] += g * ((*probs)[i * c + j] - onehot);
        }
      }
    }
  });
  float loss = 0.0f;
  for (std::size_t i = 0; i < r; ++i) {
    const float* x = logits.data() + i * c;
    const float mx = *std::max_element(x, x + c);
    float z = 0.0f;
    for (std::size_t j = 0; j < c; ++j) z += std::exp(x[j] - mx);
    const float logz = std::log(z) + mx;
    for (std::size_t j = 0; j < c; ++j) {
      (*probs)[i * c + j] = std::exp(x[j] - logz);
    }
    loss += logz - x[labels[i]];
  }
  out.data()[0] = loss / static_cast<float>(r);
  return out;
}

// ---------------------------------------------------------------------------
// DGCNN-specific
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kPadRow = 0xFFFFFFFFu;

}  // namespace

Tensor sort_pool_segments(const Tensor& a, std::size_t k,
                          const std::vector<std::uint32_t>& offsets) {
  const std::size_t c = a.cols();
  if (offsets.size() < 2 || offsets.front() != 0 ||
      offsets.back() != a.rows()) {
    throw TensorError("sort_pool_segments: bad offsets for " +
                      a.shape().str());
  }
  const std::size_t b_count = offsets.size() - 1;
  // Per output row: the selected source row, or kPadRow for zero padding.
  auto sel = std::make_shared<std::vector<std::uint32_t>>(b_count * k, kPadRow);
  std::vector<std::uint32_t> order;
  for (std::size_t b = 0; b < b_count; ++b) {
    const std::uint32_t lo = offsets[b], hi = offsets[b + 1];
    if (hi < lo) throw TensorError("sort_pool_segments: offsets decrease");
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    // Stable order: by last channel descending, ties by original index.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return a.at(x, c - 1) > a.at(y, c - 1);
                     });
    const std::size_t keep = std::min<std::size_t>(k, order.size());
    std::copy(order.begin(), order.begin() + keep, sel->begin() + b * k);
  }
  Tensor out = make_op({b_count * k, c}, {a}, [c, sel](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < sel->size(); ++i) {
        if ((*sel)[i] == kPadRow) continue;
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[(*sel)[i] * c + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < sel->size(); ++i) {
    if ((*sel)[i] == kPadRow) continue;  // padding rows stay zero
    std::copy(a.data() + (*sel)[i] * c, a.data() + ((*sel)[i] + 1) * c,
              out.data() + i * c);
  }
  return out;
}

Tensor sort_pool(const Tensor& a, std::size_t k) {
  return sort_pool_segments(a, k,
                            {0, static_cast<std::uint32_t>(a.rows())});
}

Tensor segment_cols_to_rows(const Tensor& x,
                            const std::vector<std::uint32_t>& starts,
                            std::size_t width) {
  const std::size_t ch = x.rows(), len = x.cols();
  for (const std::uint32_t s : starts) {
    if (s + width > len) {
      throw TensorError("segment_cols_to_rows: segment exceeds " +
                        x.shape().str());
    }
  }
  const std::size_t b_count = starts.size();
  auto st = std::make_shared<std::vector<std::uint32_t>>(starts);
  Tensor out = make_op({b_count, ch * width}, {x},
                       [ch, len, width, st](Node& self) {
                         if (Node* in = grad_target(self, 0)) {
                           for (std::size_t b = 0; b < st->size(); ++b) {
                             const float* g =
                                 self.grad.data() + b * ch * width;
                             for (std::size_t c = 0; c < ch; ++c) {
                               float* row = in->grad.data() + c * len +
                                            (*st)[b];
                               for (std::size_t j = 0; j < width; ++j) {
                                 row[j] += g[c * width + j];
                               }
                             }
                           }
                         }
                       });
  for (std::size_t b = 0; b < b_count; ++b) {
    float* o = out.data() + b * ch * width;
    for (std::size_t c = 0; c < ch; ++c) {
      const float* row = x.data() + c * len + starts[b];
      std::copy(row, row + width, o + c * width);
    }
  }
  return out;
}

namespace {

/// im2col for segmented 1-D conv, transposed layout: for segment s and its
/// window t, colT[(ci*ksize+u), s*lseg+t] = x[ci, starts[s] + t*stride + u].
/// With starts={0} and one full-width segment this is the classic im2col,
/// so the conv is one GEMM W[out_ch,K] * colT[K,lout].
void conv1d_im2col(const float* xv, float* col_t, std::size_t in_ch,
                   std::size_t len, std::size_t ksize, std::size_t stride,
                   const std::vector<std::uint32_t>& starts,
                   std::size_t lseg) {
  const std::size_t lout = starts.size() * lseg;
  for (std::size_t ci = 0; ci < in_ch; ++ci) {
    for (std::size_t u = 0; u < ksize; ++u) {
      float* dst = col_t + (ci * ksize + u) * lout;
      for (std::size_t s = 0; s < starts.size(); ++s) {
        const float* src = xv + ci * len + starts[s] + u;
        for (std::size_t t = 0; t < lseg; ++t) {
          dst[s * lseg + t] = src[t * stride];
        }
      }
    }
  }
}

Tensor conv1d_impl(const Tensor& x, const Tensor& w, const Tensor& b,
                   std::size_t ksize, std::size_t stride,
                   std::vector<std::uint32_t> starts, std::size_t seg_width) {
  const std::size_t in_ch = x.rows(), len = x.cols();
  const std::size_t out_ch = w.rows();
  if (w.cols() != in_ch * ksize) shape_fail("conv1d", x, w);
  if (b.numel() != out_ch) shape_fail("conv1d(bias)", w, b);
  if (seg_width < ksize) throw TensorError("conv1d: input shorter than kernel");
  if (stride == 0) throw TensorError("conv1d: zero stride");
  for (const std::uint32_t s : starts) {
    if (s + seg_width > len) {
      throw TensorError("conv1d: segment past the end of " + x.shape().str());
    }
  }
  const std::size_t lseg = (seg_width - ksize) / stride + 1;
  const std::size_t lout = starts.size() * lseg;
  const std::size_t kdim = in_ch * ksize;

  Tensor out = make_op(
      {out_ch, lout}, {x, w, b},
      [in_ch, len, out_ch, ksize, stride, lseg, lout, kdim,
       starts](Node& self) {
        const float* xv = self.inputs[0]->value.data();
        const float* wv = self.inputs[1]->value.data();
        const float* g = self.grad.data();
        Node* ix = grad_target(self, 0);
        Node* iw = grad_target(self, 1);
        Node* ib = grad_target(self, 2);
        if (ib) {
          for (std::size_t o = 0; o < out_ch; ++o) {
            float acc = 0.0f;
            for (std::size_t t = 0; t < lout; ++t) acc += g[o * lout + t];
            ib->grad[o] += acc;
          }
        }
        if (iw) {
          // dW[out_ch,K] = g[out_ch,lout] * colT^T; colT is rebuilt from the
          // saved input — cheaper than keeping it alive across the graph.
          std::vector<float> col_t(kdim * lout);
          conv1d_im2col(xv, col_t.data(), in_ch, len, ksize, stride, starts,
                        lseg);
          tensor::gemm(g, col_t.data(), iw->grad.data(), out_ch, lout, kdim,
                       false, true, true);
        }
        if (ix) {
          // dcolT[K,lout] = W^T * g, then col2im scatter-adds overlapping
          // windows back into dx.
          std::vector<float> dcol(kdim * lout);
          tensor::gemm(wv, g, dcol.data(), kdim, out_ch, lout, true, false);
          for (std::size_t ci = 0; ci < in_ch; ++ci) {
            for (std::size_t u = 0; u < ksize; ++u) {
              const float* src = dcol.data() + (ci * ksize + u) * lout;
              for (std::size_t s = 0; s < starts.size(); ++s) {
                float* dst = ix->grad.data() + ci * len + starts[s] + u;
                for (std::size_t t = 0; t < lseg; ++t) {
                  dst[t * stride] += src[s * lseg + t];
                }
              }
            }
          }
        }
      });
  std::vector<float> col_t(kdim * lout);
  conv1d_im2col(x.data(), col_t.data(), in_ch, len, ksize, stride, starts,
                lseg);
  // Out-channel bias rides the GEMM's fused per-row epilogue instead of a
  // second pass over the output.
  tensor::Epilogue ep;
  ep.bias_row = b.data();
  tensor::gemm(w.data(), col_t.data(), out.data(), out_ch, kdim, lout, false,
               false, false, ep);
  return out;
}

}  // namespace

Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::size_t ksize, std::size_t stride) {
  return conv1d_impl(x, w, b, ksize, stride, {0}, x.cols());
}

Tensor conv1d_segments(const Tensor& x, const Tensor& w, const Tensor& b,
                       std::size_t ksize, std::size_t stride,
                       const std::vector<std::uint32_t>& starts,
                       std::size_t seg_width) {
  if (starts.empty()) throw TensorError("conv1d_segments: no segments");
  return conv1d_impl(x, w, b, ksize, stride, starts, seg_width);
}

Tensor maxpool1d(const Tensor& x, std::size_t window) {
  const std::size_t c = x.rows(), len = x.cols();
  if (window == 0 || len < window) {
    throw TensorError("maxpool1d: bad window for " + x.shape().str());
  }
  const std::size_t lout = len / window;
  auto arg = std::make_shared<std::vector<std::uint32_t>>(c * lout);
  Tensor out = make_op({c, lout}, {x}, [c, lout, arg](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < c * lout; ++i) {
        in->grad[(*arg)[i]] += self.grad[i];
      }
    }
  });
  for (std::size_t ci = 0; ci < c; ++ci) {
    for (std::size_t t = 0; t < lout; ++t) {
      std::size_t best = ci * len + t * window;
      for (std::size_t u = 1; u < window; ++u) {
        const std::size_t cand = ci * len + t * window + u;
        if (x.data()[cand] > x.data()[best]) best = cand;
      }
      out.data()[ci * lout + t] = x.data()[best];
      (*arg)[ci * lout + t] = static_cast<std::uint32_t>(best);
    }
  }
  return out;
}

}  // namespace mvgnn::ag
