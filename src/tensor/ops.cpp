#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/gemm.hpp"

namespace mvgnn::ag {

namespace {

using detail::Node;

[[noreturn]] void shape_fail(const char* op, const Tensor& a, const Tensor& b) {
  throw TensorError(std::string(op) + ": incompatible shapes " +
                    a.shape().str() + " and " + b.shape().str());
}

bool any_rg(const std::vector<Tensor>& inputs) {
  for (const Tensor& t : inputs) {
    if (t.requires_grad()) return true;
  }
  return false;
}

/// Creates an op node with `inputs` and `bw`; value must be filled by the
/// caller through the returned tensor's data().
Tensor make_op(Shape s, std::vector<Tensor> inputs,
               std::function<void(Node&)> bw) {
  auto n = std::make_shared<Node>();
  n->shape = s;
  n->value.assign(s.numel(), 0.0f);
  n->requires_grad = any_rg(inputs);
  for (const Tensor& t : inputs) n->inputs.push_back(t.node());
  if (n->requires_grad) n->backward = std::move(bw);
  return Tensor(std::move(n));
}

/// Accumulates g into input i of `self` if that input wants gradients.
Node* grad_target(Node& self, std::size_t i) {
  Node* in = self.inputs[i].get();
  if (!in->requires_grad) return nullptr;
  in->ensure_grad();
  return in;
}

}  // namespace

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) shape_fail("matmul", a, b);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = make_op({m, n}, {a, b}, [m, k, n](Node& self) {
    const float* g = self.grad.data();
    const float* av = self.inputs[0]->value.data();
    const float* bv = self.inputs[1]->value.data();
    if (Node* ia = grad_target(self, 0)) {
      // dA = dC * B^T
      tensor::gemm(g, bv, ia->grad.data(), m, n, k, false, true, true);
    }
    if (Node* ib = grad_target(self, 1)) {
      // dB = A^T * dC
      tensor::gemm(av, g, ib->grad.data(), k, m, n, true, false, true);
    }
  });
  tensor::gemm(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor transpose(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  Tensor out = make_op({c, r}, {a}, [r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += self.grad[j * r + i];
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out.data()[j * r + i] = a.at(i, j);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  const bool bias = (b.rows() == 1 && b.cols() == a.cols() &&
                     !(a.shape() == b.shape()));
  if (!bias && !(a.shape() == b.shape())) shape_fail("add", a, b);
  const std::size_t n = a.numel(), c = a.cols();
  Tensor out = make_op(a.shape(), {a, b}, [n, c, bias](Node& self) {
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      if (bias) {
        for (std::size_t i = 0; i < n; ++i) ib->grad[i % c] += self.grad[i];
      } else {
        for (std::size_t i = 0; i < n; ++i) ib->grad[i] += self.grad[i];
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    out.data()[i] = a.data()[i] + (bias ? b.data()[i % c] : b.data()[i]);
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) shape_fail("sub", a, b);
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a, b}, [n](Node& self) {
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      for (std::size_t i = 0; i < n; ++i) ib->grad[i] -= self.grad[i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] - b.data()[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) shape_fail("mul", a, b);
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a, b}, [n](Node& self) {
    const float* av = self.inputs[0]->value.data();
    const float* bv = self.inputs[1]->value.data();
    if (Node* ia = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) ia->grad[i] += self.grad[i] * bv[i];
    }
    if (Node* ib = grad_target(self, 1)) {
      for (std::size_t i = 0; i < n; ++i) ib->grad[i] += self.grad[i] * av[i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a}, [n, s](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[i] * s;
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * s;
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor unary_ew(const Tensor& a, Fwd fwd, Bwd bwd_from_out) {
  const std::size_t n = a.numel();
  Tensor out = make_op(a.shape(), {a}, [n, bwd_from_out](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) {
        in->grad[i] += self.grad[i] * bwd_from_out(self.value[i],
                                                   self.inputs[0]->value[i]);
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = fwd(a.data()[i]);
  return out;
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float y, float) { return y > 0.0f ? 1.0f : 0.0f; });
}

Tensor tanh_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return std::tanh(x); },
      [](float y, float) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y, float) { return y * (1.0f - y); });
}

Tensor exp_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return std::exp(x); },
      [](float y, float) { return y; });
}

Tensor log_t(const Tensor& a) {
  return unary_ew(
      a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float, float x) { return 1.0f / std::max(x, 1e-12f); });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor sum(const Tensor& a) {
  const std::size_t n = a.numel();
  Tensor out = make_op({1, 1}, {a}, [n](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[0];
    }
  });
  out.data()[0] = std::accumulate(a.data(), a.data() + n, 0.0f);
  return out;
}

Tensor mean(const Tensor& a) {
  return scale(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor mean_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  const float inv = 1.0f / static_cast<float>(std::max<std::size_t>(1, r));
  Tensor out = make_op({1, c}, {a}, [r, c, inv](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += self.grad[j] * inv;
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out.data()[j] += a.at(i, j) * inv;
  }
  return out;
}

Tensor max_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  if (r == 0) throw TensorError("max_rows on empty tensor");
  auto argmax = std::make_shared<std::vector<std::uint32_t>>(c, 0);
  Tensor out = make_op({1, c}, {a}, [c, argmax](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t j = 0; j < c; ++j) {
        in->grad[(*argmax)[j] * c + j] += self.grad[j];
      }
    }
  });
  for (std::size_t j = 0; j < c; ++j) {
    float best = a.at(0, j);
    std::uint32_t bi = 0;
    for (std::size_t i = 1; i < r; ++i) {
      if (a.at(i, j) > best) {
        best = a.at(i, j);
        bi = static_cast<std::uint32_t>(i);
      }
    }
    out.data()[j] = best;
    (*argmax)[j] = bi;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape s) {
  if (s.numel() != a.numel()) {
    throw TensorError("reshape: numel mismatch " + a.shape().str() + " -> " +
                      s.str());
  }
  const std::size_t n = a.numel();
  Tensor out = make_op(s, {a}, [n](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) in->grad[i] += self.grad[i];
    }
  });
  std::copy(a.data(), a.data() + n, out.data());
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) shape_fail("concat_cols", a, b);
  const std::size_t r = a.rows(), ca = a.cols(), cb = b.cols();
  Tensor out = make_op({r, ca + cb}, {a, b}, [r, ca, cb](Node& self) {
    Node* ia = grad_target(self, 0);
    Node* ib = grad_target(self, 1);
    for (std::size_t i = 0; i < r; ++i) {
      const float* g = self.grad.data() + i * (ca + cb);
      if (ia) {
        for (std::size_t j = 0; j < ca; ++j) ia->grad[i * ca + j] += g[j];
      }
      if (ib) {
        for (std::size_t j = 0; j < cb; ++j) ib->grad[i * cb + j] += g[ca + j];
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    float* o = out.data() + i * (ca + cb);
    std::copy(a.data() + i * ca, a.data() + (i + 1) * ca, o);
    std::copy(b.data() + i * cb, b.data() + (i + 1) * cb, o + ca);
  }
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) shape_fail("concat_rows", a, b);
  const std::size_t na = a.numel(), nb = b.numel();
  Tensor out = make_op({a.rows() + b.rows(), a.cols()}, {a, b},
                       [na, nb](Node& self) {
                         if (Node* ia = grad_target(self, 0)) {
                           for (std::size_t i = 0; i < na; ++i) {
                             ia->grad[i] += self.grad[i];
                           }
                         }
                         if (Node* ib = grad_target(self, 1)) {
                           for (std::size_t i = 0; i < nb; ++i) {
                             ib->grad[i] += self.grad[na + i];
                           }
                         }
                       });
  std::copy(a.data(), a.data() + na, out.data());
  std::copy(b.data(), b.data() + nb, out.data() + na);
  return out;
}

Tensor slice_rows(const Tensor& a, std::size_t r0, std::size_t r1) {
  if (r1 > a.rows() || r0 > r1) {
    throw TensorError("slice_rows: bad range on " + a.shape().str());
  }
  const std::size_t c = a.cols(), r = r1 - r0;
  Tensor out = make_op({r, c}, {a}, [r0, r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r * c; ++i) {
        in->grad[r0 * c + i] += self.grad[i];
      }
    }
  });
  std::copy(a.data() + r0 * c, a.data() + r1 * c, out.data());
  return out;
}

Tensor slice_cols(const Tensor& a, std::size_t c0, std::size_t c1) {
  if (c1 > a.cols() || c0 > c1) {
    throw TensorError("slice_cols: bad range on " + a.shape().str());
  }
  const std::size_t r = a.rows(), ca = a.cols(), c = c1 - c0;
  Tensor out = make_op({r, c}, {a}, [r, ca, c0, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * ca + c0 + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out.data()[i * c + j] = a.at(i, c0 + j);
    }
  }
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::uint32_t>& rows) {
  const std::size_t c = a.cols();
  for (const std::uint32_t r : rows) {
    if (r >= a.rows()) throw TensorError("gather_rows: index out of range");
  }
  auto idx = std::make_shared<std::vector<std::uint32_t>>(rows);
  Tensor out = make_op({rows.size(), c}, {a}, [c, idx](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < idx->size(); ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[(*idx)[i] * c + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(a.data() + rows[i] * c, a.data() + (rows[i] + 1) * c,
              out.data() + i * c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Regularization / classification
// ---------------------------------------------------------------------------

Tensor dropout(const Tensor& a, float p, bool training, par::Rng& rng) {
  if (!training || p <= 0.0f) return a;
  const std::size_t n = a.numel();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep = 1.0f - p;
  for (std::size_t i = 0; i < n; ++i) {
    (*mask)[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor out = make_op(a.shape(), {a}, [n, mask](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < n; ++i) {
        in->grad[i] += self.grad[i] * (*mask)[i];
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * (*mask)[i];
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  const std::size_t r = a.rows(), c = a.cols();
  Tensor out = make_op(a.shape(), {a}, [r, c](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < r; ++i) {
        const float* y = self.value.data() + i * c;
        const float* g = self.grad.data() + i * c;
        float dot = 0.0f;
        for (std::size_t j = 0; j < c; ++j) dot += y[j] * g[j];
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[i * c + j] += y[j] * (g[j] - dot);
        }
      }
    }
  });
  for (std::size_t i = 0; i < r; ++i) {
    const float* x = a.data() + i * c;
    float* y = out.data() + i * c;
    const float mx = *std::max_element(x, x + c);
    float z = 0.0f;
    for (std::size_t j = 0; j < c; ++j) z += (y[j] = std::exp(x[j] - mx));
    for (std::size_t j = 0; j < c; ++j) y[j] /= z;
  }
  return out;
}

Tensor cross_entropy_logits(const Tensor& logits,
                            const std::vector<int>& labels) {
  const std::size_t r = logits.rows(), c = logits.cols();
  if (labels.size() != r) {
    throw TensorError("cross_entropy_logits: label count mismatch");
  }
  // Cache the softmax for backward.
  auto probs = std::make_shared<std::vector<float>>(r * c);
  auto lab = std::make_shared<std::vector<int>>(labels);
  Tensor out = make_op({1, 1}, {logits}, [r, c, probs, lab](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      const float g = self.grad[0] / static_cast<float>(r);
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          const float onehot = (static_cast<int>(j) == (*lab)[i]) ? 1.0f : 0.0f;
          in->grad[i * c + j] += g * ((*probs)[i * c + j] - onehot);
        }
      }
    }
  });
  float loss = 0.0f;
  for (std::size_t i = 0; i < r; ++i) {
    const float* x = logits.data() + i * c;
    const float mx = *std::max_element(x, x + c);
    float z = 0.0f;
    for (std::size_t j = 0; j < c; ++j) z += std::exp(x[j] - mx);
    const float logz = std::log(z) + mx;
    for (std::size_t j = 0; j < c; ++j) {
      (*probs)[i * c + j] = std::exp(x[j] - logz);
    }
    loss += logz - x[labels[i]];
  }
  out.data()[0] = loss / static_cast<float>(r);
  return out;
}

// ---------------------------------------------------------------------------
// DGCNN-specific
// ---------------------------------------------------------------------------

Tensor sort_pool(const Tensor& a, std::size_t k) {
  const std::size_t r = a.rows(), c = a.cols();
  // Stable order: by last channel descending, ties by original index.
  std::vector<std::uint32_t> order(r);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return a.at(x, c - 1) > a.at(y, c - 1);
                   });
  const std::size_t keep = std::min(k, r);
  auto sel = std::make_shared<std::vector<std::uint32_t>>(order.begin(),
                                                          order.begin() + keep);
  Tensor out = make_op({k, c}, {a}, [c, sel](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < sel->size(); ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          in->grad[(*sel)[i] * c + j] += self.grad[i * c + j];
        }
      }
    }
  });
  for (std::size_t i = 0; i < keep; ++i) {
    std::copy(a.data() + (*sel)[i] * c, a.data() + ((*sel)[i] + 1) * c,
              out.data() + i * c);
  }
  return out;  // rows [keep, k) stay zero (padding)
}

Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::size_t ksize, std::size_t stride) {
  const std::size_t in_ch = x.rows(), len = x.cols();
  const std::size_t out_ch = w.rows();
  if (w.cols() != in_ch * ksize) shape_fail("conv1d", x, w);
  if (b.numel() != out_ch) shape_fail("conv1d(bias)", w, b);
  if (len < ksize) throw TensorError("conv1d: input shorter than kernel");
  if (stride == 0) throw TensorError("conv1d: zero stride");
  const std::size_t lout = (len - ksize) / stride + 1;

  Tensor out = make_op(
      {out_ch, lout}, {x, w, b},
      [in_ch, len, out_ch, ksize, stride, lout](Node& self) {
        const float* xv = self.inputs[0]->value.data();
        const float* wv = self.inputs[1]->value.data();
        Node* ix = grad_target(self, 0);
        Node* iw = grad_target(self, 1);
        Node* ib = grad_target(self, 2);
        for (std::size_t o = 0; o < out_ch; ++o) {
          for (std::size_t t = 0; t < lout; ++t) {
            const float g = self.grad[o * lout + t];
            if (g == 0.0f) continue;
            if (ib) ib->grad[o] += g;
            for (std::size_t ci = 0; ci < in_ch; ++ci) {
              for (std::size_t u = 0; u < ksize; ++u) {
                const std::size_t xi = ci * len + t * stride + u;
                const std::size_t wi = o * in_ch * ksize + ci * ksize + u;
                if (ix) ix->grad[xi] += g * wv[wi];
                if (iw) iw->grad[wi] += g * xv[xi];
              }
            }
          }
        }
      });
  for (std::size_t o = 0; o < out_ch; ++o) {
    for (std::size_t t = 0; t < lout; ++t) {
      float acc = b.data()[o];
      for (std::size_t ci = 0; ci < in_ch; ++ci) {
        for (std::size_t u = 0; u < ksize; ++u) {
          acc += x.at(ci, t * stride + u) *
                 w.data()[o * in_ch * ksize + ci * ksize + u];
        }
      }
      out.data()[o * lout + t] = acc;
    }
  }
  return out;
}

Tensor maxpool1d(const Tensor& x, std::size_t window) {
  const std::size_t c = x.rows(), len = x.cols();
  if (window == 0 || len < window) {
    throw TensorError("maxpool1d: bad window for " + x.shape().str());
  }
  const std::size_t lout = len / window;
  auto arg = std::make_shared<std::vector<std::uint32_t>>(c * lout);
  Tensor out = make_op({c, lout}, {x}, [c, lout, arg](Node& self) {
    if (Node* in = grad_target(self, 0)) {
      for (std::size_t i = 0; i < c * lout; ++i) {
        in->grad[(*arg)[i]] += self.grad[i];
      }
    }
  });
  for (std::size_t ci = 0; ci < c; ++ci) {
    for (std::size_t t = 0; t < lout; ++t) {
      std::size_t best = ci * len + t * window;
      for (std::size_t u = 1; u < window; ++u) {
        const std::size_t cand = ci * len + t * window + u;
        if (x.data()[cand] > x.data()[best]) best = cand;
      }
      out.data()[ci * lout + t] = x.data()[best];
      (*arg)[ci * lout + t] = static_cast<std::uint32_t>(best);
    }
  }
  return out;
}

}  // namespace mvgnn::ag
