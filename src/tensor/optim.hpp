// Optimizers. Parameters are long-lived Tensors whose values are updated in
// place between graph constructions.
#pragma once

#include <iosfwd>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvgnn::ag {

/// Dense per-parameter gradient stash for data-parallel training
/// (docs/parallelism.md). Each shard of a mini-batch captures its model
/// replica's gradients into one accumulator; the per-shard accumulators are
/// then combined with `tree_merge` in a fixed order and loaded back into
/// the master parameters for one optimizer step. Keeping the buffers
/// outside the Tensor graph means replicas can run backward concurrently
/// without ever sharing a gradient buffer.
class GradAccumulator {
 public:
  GradAccumulator() = default;
  /// Shapes the buffers like `params` (all zeros).
  explicit GradAccumulator(const std::vector<Tensor>& params);

  /// Adds `scale * params[i].grad()` into buffer i. The shard scale is
  /// `shard_rows / batch_rows`: each shard's loss means over its own rows,
  /// so the weighted sum over shards reproduces the whole-batch mean.
  void accumulate(const std::vector<Tensor>& params, float scale = 1.0f);

  /// Elementwise merge: this += other. The reduction combiner.
  void merge(const GradAccumulator& other);

  /// Copies the buffers into `params`' gradient storage (overwriting).
  void store_to(const std::vector<Tensor>& params) const;

  [[nodiscard]] const std::vector<std::vector<float>>& grads() const {
    return g_;
  }

 private:
  std::vector<std::vector<float>> g_;
};

/// Reduces `shards` pairwise with stride doubling: round k merges
/// shards[i+2^k] into shards[i]. The pairing is a function of
/// shards.size() alone — never of how many threads produced them — so the
/// floats that end up in shards[0] are bit-identical for every thread
/// count, which is what keeps data-parallel training deterministic.
void tree_merge(std::vector<GradAccumulator>& shards);

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  void add_param(const Tensor& t) { params_.push_back(t); }
  void add_params(const std::vector<Tensor>& ts) {
    params_.insert(params_.end(), ts.begin(), ts.end());
  }
  [[nodiscard]] const std::vector<Tensor>& params() const { return params_; }

  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }
  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Adjusts the learning rate (schedules are driven by the trainers).
  virtual void set_lr(float lr) = 0;

  /// Rescales all gradients so their global L2 norm is at most `max_norm`
  /// (no-op when already below). Call between backward() and step(); keeps
  /// recurrent models (LSTM) from diverging on long sequences.
  void clip_gradients(float max_norm);

  /// Zeroed accumulator shaped like the registered parameters.
  [[nodiscard]] GradAccumulator make_accumulator() const {
    return GradAccumulator(params_);
  }

  /// Loads an externally reduced gradient into the registered parameters'
  /// gradient buffers; the next step() then applies it as if a single
  /// backward pass had produced it.
  void load_merged(const GradAccumulator& g) { g.store_to(params_); }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), wd_(weight_decay) {}
  void step() override;
  void set_lr(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float wd_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr), b1_(beta1), b2_(beta2), eps_(eps), wd_(weight_decay) {}
  void step() override;
  void set_lr(float lr) override { lr_ = lr; }

  /// Serializes the step counter and the first/second-moment buffers so a
  /// checkpoint can restore the exact update trajectory. Layout: i64 t,
  /// u64 buffer count, then per buffer u64 numel followed by m and v floats.
  /// A never-stepped optimizer round-trips as an empty state.
  void save_state(std::ostream& os) const;

  /// Restores a state written by save_state(). The buffers must match the
  /// registered parameters; throws std::runtime_error on any mismatch.
  void load_state(std::istream& is);

 private:
  float lr_, b1_, b2_, eps_, wd_;
  std::vector<std::vector<float>> m_, v_;
  long t_ = 0;
};

}  // namespace mvgnn::ag
