// Optimizers. Parameters are long-lived Tensors whose values are updated in
// place between graph constructions.
#pragma once

#include <iosfwd>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvgnn::ag {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  void add_param(const Tensor& t) { params_.push_back(t); }
  void add_params(const std::vector<Tensor>& ts) {
    params_.insert(params_.end(), ts.begin(), ts.end());
  }
  [[nodiscard]] const std::vector<Tensor>& params() const { return params_; }

  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }
  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Adjusts the learning rate (schedules are driven by the trainers).
  virtual void set_lr(float lr) = 0;

  /// Rescales all gradients so their global L2 norm is at most `max_norm`
  /// (no-op when already below). Call between backward() and step(); keeps
  /// recurrent models (LSTM) from diverging on long sequences.
  void clip_gradients(float max_norm);

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), wd_(weight_decay) {}
  void step() override;
  void set_lr(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float wd_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr), b1_(beta1), b2_(beta2), eps_(eps), wd_(weight_decay) {}
  void step() override;
  void set_lr(float lr) override { lr_ = lr; }

  /// Serializes the step counter and the first/second-moment buffers so a
  /// checkpoint can restore the exact update trajectory. Layout: i64 t,
  /// u64 buffer count, then per buffer u64 numel followed by m and v floats.
  /// A never-stepped optimizer round-trips as an empty state.
  void save_state(std::ostream& os) const;

  /// Restores a state written by save_state(). The buffers must match the
  /// registered parameters; throws std::runtime_error on any mismatch.
  void load_state(std::istream& is);

 private:
  float lr_, b1_, b2_, eps_, wd_;
  std::vector<std::vector<float>> m_, v_;
  long t_ = 0;
};

}  // namespace mvgnn::ag
