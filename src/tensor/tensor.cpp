#include "tensor/tensor.hpp"

#include <algorithm>
#include <unordered_set>

namespace mvgnn::ag {

Tensor Tensor::zeros(Shape s, bool requires_grad) {
  auto n = std::make_shared<detail::Node>();
  n->shape = s;
  n->value.assign(s.numel(), 0.0f);
  n->requires_grad = requires_grad;
  return Tensor(std::move(n));
}

Tensor Tensor::full(Shape s, float v, bool requires_grad) {
  auto n = std::make_shared<detail::Node>();
  n->shape = s;
  n->value.assign(s.numel(), v);
  n->requires_grad = requires_grad;
  return Tensor(std::move(n));
}

Tensor Tensor::randn(Shape s, par::Rng& rng, float scale, bool requires_grad) {
  auto n = std::make_shared<detail::Node>();
  n->shape = s;
  n->value.resize(s.numel());
  for (float& x : n->value) {
    x = static_cast<float>(rng.normal()) * scale;
  }
  n->requires_grad = requires_grad;
  return Tensor(std::move(n));
}

Tensor Tensor::from_data(Shape s, std::vector<float> data, bool requires_grad) {
  if (data.size() != s.numel()) {
    throw TensorError("from_data: size mismatch for shape " + s.str());
  }
  auto n = std::make_shared<detail::Node>();
  n->shape = s;
  n->value = std::move(data);
  n->requires_grad = requires_grad;
  return Tensor(std::move(n));
}

void Tensor::backward() {
  if (!node_) throw TensorError("backward() on undefined tensor");
  if (numel() != 1) {
    throw TensorError("backward() requires a scalar root, got " +
                      shape().str());
  }
  // Topological order by iterative post-order DFS.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    if (i < n->inputs.size()) {
      detail::Node* child = n->inputs[i++].get();
      if (child && visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward && n->requires_grad) {
      n->ensure_grad();
      n->backward(*n);
    }
  }
}

}  // namespace mvgnn::ag
