#include "tensor/optim.hpp"

#include <cmath>

namespace mvgnn::ag {

void Optimizer::clip_gradients(float max_norm) {
  double sq = 0.0;
  for (Tensor& p : params_) {
    for (const float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = max_norm / static_cast<float>(norm);
  for (Tensor& p : params_) {
    // grad() hands back a const ref to the node's buffer; scale in place.
    auto& g = const_cast<std::vector<float>&>(p.grad());
    for (float& x : g) x *= scale;
  }
}

void Sgd::step() {
  for (Tensor& p : params_) {
    const std::vector<float>& g = p.grad();
    float* x = p.data();
    for (std::size_t i = 0; i < p.numel(); ++i) {
      x[i] -= lr_ * (g[i] + wd_ * x[i]);
    }
  }
}

void Adam::step() {
  if (m_.size() != params_.size()) {
    m_.clear();
    v_.clear();
    for (const Tensor& p : params_) {
      m_.emplace_back(p.numel(), 0.0f);
      v_.emplace_back(p.numel(), 0.0f);
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(b1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    const std::vector<float>& grad = p.grad();
    float* x = p.data();
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const float g = grad[i] + wd_ * x[i];
      m_[k][i] = b1_ * m_[k][i] + (1.0f - b1_) * g;
      v_[k][i] = b2_ * v_[k][i] + (1.0f - b2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      x[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace mvgnn::ag
