#include "tensor/optim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace mvgnn::ag {

namespace {

template <typename T>
void put_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T get_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("Adam::load_state: truncated state");
  return v;
}

void put_floats(std::ostream& os, const std::vector<float>& v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void get_floats(std::istream& is, std::vector<float>& v) {
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  if (!is) throw std::runtime_error("Adam::load_state: truncated state");
}

}  // namespace

GradAccumulator::GradAccumulator(const std::vector<Tensor>& params) {
  g_.reserve(params.size());
  for (const Tensor& p : params) g_.emplace_back(p.numel(), 0.0f);
}

void GradAccumulator::accumulate(const std::vector<Tensor>& params,
                                 float scale) {
  if (g_.size() != params.size()) {
    throw std::runtime_error("GradAccumulator: " + std::to_string(g_.size()) +
                             " buffers but " + std::to_string(params.size()) +
                             " params");
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    const std::vector<float>& grad = params[k].grad();
    if (grad.size() != g_[k].size()) {
      throw std::runtime_error("GradAccumulator: buffer " + std::to_string(k) +
                               " shape mismatch");
    }
    float* out = g_[k].data();
    for (std::size_t i = 0; i < grad.size(); ++i) out[i] += scale * grad[i];
  }
}

void GradAccumulator::merge(const GradAccumulator& other) {
  if (g_.size() != other.g_.size()) {
    throw std::runtime_error("GradAccumulator::merge: buffer count mismatch");
  }
  for (std::size_t k = 0; k < g_.size(); ++k) {
    if (g_[k].size() != other.g_[k].size()) {
      throw std::runtime_error("GradAccumulator::merge: buffer " +
                               std::to_string(k) + " shape mismatch");
    }
    float* out = g_[k].data();
    const float* in = other.g_[k].data();
    for (std::size_t i = 0; i < g_[k].size(); ++i) out[i] += in[i];
  }
}

void GradAccumulator::store_to(const std::vector<Tensor>& params) const {
  if (g_.size() != params.size()) {
    throw std::runtime_error("GradAccumulator::store_to: buffer count mismatch");
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    // grad() hands back a const ref to the node's buffer; overwrite in
    // place, exactly like clip_gradients does.
    auto& dst = const_cast<std::vector<float>&>(params[k].grad());
    if (dst.size() != g_[k].size()) {
      throw std::runtime_error("GradAccumulator::store_to: buffer " +
                               std::to_string(k) + " shape mismatch");
    }
    std::copy(g_[k].begin(), g_[k].end(), dst.begin());
  }
}

void tree_merge(std::vector<GradAccumulator>& shards) {
  for (std::size_t stride = 1; stride < shards.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < shards.size(); i += 2 * stride) {
      shards[i].merge(shards[i + stride]);
    }
  }
}

void Optimizer::clip_gradients(float max_norm) {
  double sq = 0.0;
  for (Tensor& p : params_) {
    for (const float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = max_norm / static_cast<float>(norm);
  for (Tensor& p : params_) {
    // grad() hands back a const ref to the node's buffer; scale in place.
    auto& g = const_cast<std::vector<float>&>(p.grad());
    for (float& x : g) x *= scale;
  }
}

void Sgd::step() {
  for (Tensor& p : params_) {
    const std::vector<float>& g = p.grad();
    float* x = p.data();
    for (std::size_t i = 0; i < p.numel(); ++i) {
      x[i] -= lr_ * (g[i] + wd_ * x[i]);
    }
  }
}

void Adam::step() {
  if (m_.size() != params_.size()) {
    m_.clear();
    v_.clear();
    for (const Tensor& p : params_) {
      m_.emplace_back(p.numel(), 0.0f);
      v_.emplace_back(p.numel(), 0.0f);
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(b1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    const std::vector<float>& grad = p.grad();
    float* x = p.data();
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const float g = grad[i] + wd_ * x[i];
      m_[k][i] = b1_ * m_[k][i] + (1.0f - b1_) * g;
      v_[k][i] = b2_ * v_[k][i] + (1.0f - b2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      x[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::save_state(std::ostream& os) const {
  put_raw(os, static_cast<std::int64_t>(t_));
  put_raw(os, static_cast<std::uint64_t>(m_.size()));
  for (std::size_t k = 0; k < m_.size(); ++k) {
    put_raw(os, static_cast<std::uint64_t>(m_[k].size()));
    put_floats(os, m_[k]);
    put_floats(os, v_[k]);
  }
}

void Adam::load_state(std::istream& is) {
  const auto t = get_raw<std::int64_t>(is);
  const auto count = get_raw<std::uint64_t>(is);
  if (count == 0) {
    // Checkpoint was taken before the first step(); start fresh.
    t_ = static_cast<long>(t);
    m_.clear();
    v_.clear();
    return;
  }
  if (count != params_.size()) {
    throw std::runtime_error("Adam::load_state: state holds " +
                             std::to_string(count) + " buffers but " +
                             std::to_string(params_.size()) +
                             " params are registered");
  }
  std::vector<std::vector<float>> m(count), v(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto n = get_raw<std::uint64_t>(is);
    if (n != params_[k].numel()) {
      throw std::runtime_error("Adam::load_state: buffer " +
                               std::to_string(k) + " has " +
                               std::to_string(n) + " elements, param has " +
                               std::to_string(params_[k].numel()));
    }
    m[k].resize(static_cast<std::size_t>(n));
    v[k].resize(static_cast<std::size_t>(n));
    get_floats(is, m[k]);
    get_floats(is, v[k]);
  }
  t_ = static_cast<long>(t);
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace mvgnn::ag
