// NEON backend (aarch64): same packed-panel structure as the AVX2 backend
// with a 6x8 microkernel (12 q-register accumulators, two B registers).
// Compile-gated in src/tensor/CMakeLists.txt to ARM targets, where NEON is
// baseline — usable() is unconditionally true. Shares the packing, epilogue
// and determinism contract documented in backend.hpp / avx2.cpp.
#include "tensor/backend/backend.hpp"

#if defined(__ARM_NEON) || defined(__aarch64__)

#include <arm_neon.h>

#include "tensor/backend/pack.hpp"

namespace mvgnn::tensor::backend {

namespace {

constexpr std::size_t MR = 6;
constexpr std::size_t NR = 8;
constexpr std::size_t KC = 256;
constexpr std::size_t MC = 96;
constexpr std::size_t NC = 512;

void micro_6x8(const float* ap, const float* bp, std::size_t kc, float* ct) {
  float32x4_t acc[MR][2];
  for (std::size_t r = 0; r < MR; ++r) {
    acc[r][0] = vdupq_n_f32(0.0f);
    acc[r][1] = vdupq_n_f32(0.0f);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(bp + p * NR);
    const float32x4_t b1 = vld1q_f32(bp + p * NR + 4);
    const float* a = ap + p * MR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float32x4_t av = vdupq_n_f32(a[r]);
      acc[r][0] = vfmaq_f32(acc[r][0], av, b0);
      acc[r][1] = vfmaq_f32(acc[r][1], av, b1);
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    vst1q_f32(ct + r * NR, acc[r][0]);
    vst1q_f32(ct + r * NR + 4, acc[r][1]);
  }
}

class NeonBackend final : public KernelBackend {
 public:
  [[nodiscard]] const char* name() const override { return "neon"; }
  [[nodiscard]] int id() const override { return 2; }
  [[nodiscard]] bool usable() const override { return true; }

  void gemm_block(const GemmArgs& g, std::size_t i0, std::size_t i1,
                  std::size_t j0, std::size_t j1) const override {
    static thread_local AlignedBuf a_buf, b_buf;
    alignas(64) float ct[MR * NR];
    for (std::size_t jc = j0; jc < j1; jc += NC) {
      const std::size_t nc = (j1 - jc) < NC ? (j1 - jc) : NC;
      for (std::size_t pc = 0; pc < g.k; pc += KC) {
        const std::size_t kc = (g.k - pc) < KC ? (g.k - pc) : KC;
        float* bp = b_buf.ensure(round_up(nc, NR) * kc);
        pack_b<NR>(g, pc, kc, jc, nc, bp);
        for (std::size_t ic = i0; ic < i1; ic += MC) {
          const std::size_t mc = (i1 - ic) < MC ? (i1 - ic) : MC;
          float* ap = a_buf.ensure(round_up(mc, MR) * kc);
          pack_a<MR>(g, ic, mc, pc, kc, ap);
          for (std::size_t js = 0; js < nc; js += NR) {
            const float* bs = bp + js * kc;
            const std::size_t vn = (nc - js) < NR ? (nc - js) : NR;
            for (std::size_t is = 0; is < mc; is += MR) {
              micro_6x8(ap + is * kc, bs, kc, ct);
              const std::size_t vm = (mc - is) < MR ? (mc - is) : MR;
              for (std::size_t r = 0; r < vm; ++r) {
                float* crow = g.c + (ic + is + r) * g.n + jc + js;
                const float* trow = ct + r * NR;
                for (std::size_t c = 0; c < vn; ++c) crow[c] += trow[c];
              }
            }
          }
        }
      }
    }
    apply_epilogue(g, i0, i1, j0, j1);
  }

  void spmm_rows(const SpmmArgs& s, std::size_t r0,
                 std::size_t r1) const override {
    const std::size_t cols = s.cols;
    for (std::size_t r = r0; r < r1; ++r) {
      float* o = s.out + r * cols;
      for (std::uint32_t e = s.row_ptr[r]; e < s.row_ptr[r + 1]; ++e) {
        const float v = s.vals[e];
        const float* row =
            s.x + static_cast<std::size_t>(s.col_idx[e]) * cols;
        const float32x4_t vv = vdupq_n_f32(v);
        std::size_t j = 0;
        for (; j + 4 <= cols; j += 4) {
          vst1q_f32(o + j, vfmaq_f32(vld1q_f32(o + j), vv, vld1q_f32(row + j)));
        }
        for (; j < cols; ++j) o[j] += v * row[j];
      }
      if (s.tanh) {
        for (std::size_t j = 0; j < cols; ++j) o[j] = fast_tanh(o[j]);
      }
    }
  }
};

}  // namespace

const KernelBackend& neon_backend() {
  static const NeonBackend b;
  return b;
}

}  // namespace mvgnn::tensor::backend

#endif  // __ARM_NEON || __aarch64__
