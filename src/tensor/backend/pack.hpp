// Panel packing for the register-blocked SIMD backends.
//
// The BLIS-style microkernel wants both operands contiguous and padded:
// A as MR-row strips laid out k-major (strip s holds rows i0+s*MR..+MR-1,
// element order ap[p*MR + r]), B as NR-column strips (bp[p*NR + c]). Tail
// strips are zero-padded to the full MR/NR so the microkernel never branches
// on fringe sizes — the writeback clips to the valid rows/columns instead.
// Packing reads the operands through gemm_a_at/gemm_b_at, which is also how
// the transpose flags disappear: a transposed operand just packs with a
// different stride, no materialized transpose buffer anywhere.
//
// Buffers are 64-byte aligned (cache line / AVX-512 friendly) and reused
// per thread: the pool runs each gemm_block task on exactly one thread and
// blocks never nest, so thread_local reuse is race-free and keeps the hot
// loop allocation-free after warm-up.
#pragma once

#include <cstdlib>
#include <cstring>

#include "tensor/backend/backend.hpp"

namespace mvgnn::tensor::backend {

/// Grow-only 64-byte-aligned float buffer.
class AlignedBuf {
 public:
  AlignedBuf() = default;
  ~AlignedBuf() { std::free(p_); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;

  float* ensure(std::size_t count) {
    if (count > cap_) {
      std::free(p_);
      // Round the byte size up to the alignment as aligned_alloc requires.
      const std::size_t bytes = (count * sizeof(float) + 63) & ~std::size_t{63};
      p_ = static_cast<float*>(std::aligned_alloc(64, bytes));
      cap_ = p_ != nullptr ? count : 0;
    }
    return p_;
  }

 private:
  float* p_ = nullptr;
  std::size_t cap_ = 0;
};

/// Packs A rows [i0, i0+mc) x K [p0, p0+kc) into MR-row strips; rows past
/// the operand's end (mc rounded up to MR) are zero.
template <std::size_t MR>
void pack_a(const GemmArgs& g, std::size_t i0, std::size_t mc, std::size_t p0,
            std::size_t kc, float* ap) {
  for (std::size_t s = 0; s < mc; s += MR) {
    const std::size_t rows = (mc - s) < MR ? (mc - s) : MR;
    float* dst = ap + s * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      std::size_t r = 0;
      for (; r < rows; ++r) dst[p * MR + r] = gemm_a_at(g, i0 + s + r, p0 + p);
      for (; r < MR; ++r) dst[p * MR + r] = 0.0f;
    }
  }
}

/// Packs B K [p0, p0+kc) x cols [j0, j0+nc) into NR-column strips; columns
/// past the operand's end are zero.
template <std::size_t NR>
void pack_b(const GemmArgs& g, std::size_t p0, std::size_t kc, std::size_t j0,
            std::size_t nc, float* bp) {
  for (std::size_t s = 0; s < nc; s += NR) {
    const std::size_t cols = (nc - s) < NR ? (nc - s) : NR;
    float* dst = bp + s * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      std::size_t c = 0;
      for (; c < cols; ++c) dst[p * NR + c] = gemm_b_at(g, p0 + p, j0 + s + c);
      for (; c < NR; ++c) dst[p * NR + c] = 0.0f;
    }
  }
}

inline std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace mvgnn::tensor::backend
