// Backend selection: compiled-in candidates in preference order, runtime
// CPU-feature checks, MVGNN_BACKEND env / force() overrides. The selection
// is published exactly once per change — `tensor.backend` gauge (the id) for
// reports and a log line (the name) for humans — so every run records which
// kernels produced its numbers.
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "tensor/backend/backend.hpp"

namespace mvgnn::tensor::backend {

// Defined in their own TUs, which src/tensor/CMakeLists.txt only compiles
// (and only defines these macros) when MVGNN_NATIVE_ARCH is ON and the
// target architecture matches.
#if defined(MVGNN_HAVE_BACKEND_AVX2)
const KernelBackend& avx2_backend();
#endif
#if defined(MVGNN_HAVE_BACKEND_NEON)
const KernelBackend& neon_backend();
#endif

namespace {

std::atomic<const KernelBackend*> g_active{nullptr};
std::mutex g_mutex;  // serializes (re)selection, not the hot path

const KernelBackend* find(std::string_view name) {
  for (const KernelBackend* b : all()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

/// Env override when it names a usable backend, else the first usable
/// candidate (scalar is always usable, so this never fails).
const KernelBackend* pick_auto() {
  if (const char* env = std::getenv("MVGNN_BACKEND");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    if (const KernelBackend* b = find(env); b != nullptr && b->usable()) {
      return b;
    }
    obs::log_warn("tensor.backend: ignoring MVGNN_BACKEND",
                  {{"value", env}});
  }
  for (const KernelBackend* b : all()) {
    if (b->usable()) return b;
  }
  return &scalar_backend();
}

void publish(const KernelBackend* b, const char* how) {
  obs::Registry::global().gauge("tensor.backend").set(b->id());
  obs::log_info("tensor.backend",
                {{"backend", b->name()}, {"via", how}});
  g_active.store(b, std::memory_order_release);
}

}  // namespace

const std::vector<const KernelBackend*>& all() {
  static const std::vector<const KernelBackend*> backends = [] {
    std::vector<const KernelBackend*> v;
#if defined(MVGNN_HAVE_BACKEND_AVX2)
    v.push_back(&avx2_backend());
#endif
#if defined(MVGNN_HAVE_BACKEND_NEON)
    v.push_back(&neon_backend());
#endif
    v.push_back(&scalar_backend());
    return v;
  }();
  return backends;
}

const KernelBackend& active() {
  if (const KernelBackend* b = g_active.load(std::memory_order_acquire)) {
    return *b;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_active.load(std::memory_order_relaxed) == nullptr) {
    publish(pick_auto(), "auto");
  }
  return *g_active.load(std::memory_order_relaxed);
}

bool force(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (name == "auto") {
    publish(pick_auto(), "auto");
    return true;
  }
  const KernelBackend* b = find(name);
  if (b == nullptr || !b->usable()) return false;
  publish(b, "forced");
  return true;
}

const char* name_for_id(int id) {
  switch (id) {
    case 0: return "scalar";
    case 1: return "avx2";
    case 2: return "neon";
    default: return "unknown";
  }
}

}  // namespace mvgnn::tensor::backend
