// Shared activation numerics for every kernel backend.
//
// fast_tanh lived in ops.cpp since PR 3; it moved here so the fused GEMM /
// spmm epilogues and the elementwise ag::tanh_t op all evaluate the *same*
// polynomial — one numerics policy (docs/kernels.md §numerics) instead of a
// per-call-site drift. It is header-inline on purpose: each backend TU
// compiles it with its own ISA flags, so the AVX2 TU gets the vectorized
// form for free while the portable TU stays baseline.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

namespace mvgnn::tensor::backend {

/// Branchless float tanh via a range-reduced exp2 polynomial:
/// tanh(x) = (e^{2x}-1)/(e^{2x}+1). Max abs error vs std::tanh is ~1e-7,
/// well inside float round-off for downstream math, and unlike libm tanhf
/// it auto-vectorizes, which matters for the GCN stack where tanh over the
/// node-feature blocks otherwise dominates the forward pass.
inline float fast_tanh(float x) {
  // |2x| > 17.0 => tanh(x) == +/-1 to float precision.
  float u = 2.0f * x;
  u = std::min(17.0f, std::max(-17.0f, u));
  // e^u = 2^n * e^r with n = round(u/ln2), r in [-ln2/2, ln2/2]. Round via
  // the add-magic-number trick so the whole body stays branchless.
  const float kLog2e = 1.44269504088896341f;
  const float kLn2Hi = 0.693359375f;
  const float kLn2Lo = -2.12194440e-4f;
  const float kRound = 12582912.0f;  // 1.5 * 2^23
  const float shifted = u * kLog2e + kRound;
  const std::int32_t n =
      std::bit_cast<std::int32_t>(shifted) - std::bit_cast<std::int32_t>(kRound);
  const float nf = shifted - kRound;
  const float r = (u - nf * kLn2Hi) - nf * kLn2Lo;
  // Degree-5 minimax polynomial for e^r on the reduced range.
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  // Scale by 2^n through the exponent bits (n is in [-25, 25] here, so the
  // biased exponent never over/underflows).
  const float t = p * std::bit_cast<float>((n + 127) << 23);
  return (t - 1.0f) / (t + 1.0f);
}

}  // namespace mvgnn::tensor::backend
