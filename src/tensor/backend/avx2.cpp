// AVX2+FMA backend: BLIS-style packed register-blocked GEMM and a
// vectorized CSR spmm. This TU is compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt) and only ever *executed* after the dispatcher's
// runtime __builtin_cpu_supports check passes.
//
// Blocking (docs/kernels.md): 6x16 microkernel — 12 ymm accumulators, one
// broadcast register, two B registers — under KC=256 / MC=96 / NC=512 cache
// blocks. A is packed k-major in 6-row strips, B in 16-column strips, both
// zero-padded to full strips in 64-byte-aligned thread-local buffers, so the
// microkernel has no fringe branches; the writeback clips to valid rows and
// columns instead.
//
// Determinism: each C element accumulates K strictly ascending — KC chunks
// in order, ascending p inside the microkernel, every element in its own
// accumulator lane (no horizontal reductions) — so results are bit-identical
// however the driver splits [i0,i1)x[j0,j1) across tasks.
#include "tensor/backend/backend.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "tensor/backend/pack.hpp"

namespace mvgnn::tensor::backend {

namespace {

constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
constexpr std::size_t KC = 256;
constexpr std::size_t MC = 96;
constexpr std::size_t NC = 512;

/// ct[6][16] = Ap-strip (kc x 6) * Bp-strip (kc x 16), fully unrolled so the
/// 12 accumulators stay pinned in ymm registers.
void micro_6x16(const float* ap, const float* bp, std::size_t kc, float* ct) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_load_ps(bp + p * NR);
    const __m256 b1 = _mm256_load_ps(bp + p * NR + 8);
    const float* a = ap + p * MR;
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_store_ps(ct + 0 * NR, c00);
  _mm256_store_ps(ct + 0 * NR + 8, c01);
  _mm256_store_ps(ct + 1 * NR, c10);
  _mm256_store_ps(ct + 1 * NR + 8, c11);
  _mm256_store_ps(ct + 2 * NR, c20);
  _mm256_store_ps(ct + 2 * NR + 8, c21);
  _mm256_store_ps(ct + 3 * NR, c30);
  _mm256_store_ps(ct + 3 * NR + 8, c31);
  _mm256_store_ps(ct + 4 * NR, c40);
  _mm256_store_ps(ct + 4 * NR + 8, c41);
  _mm256_store_ps(ct + 5 * NR, c50);
  _mm256_store_ps(ct + 5 * NR + 8, c51);
}

class Avx2Backend final : public KernelBackend {
 public:
  [[nodiscard]] const char* name() const override { return "avx2"; }
  [[nodiscard]] int id() const override { return 1; }
  [[nodiscard]] bool usable() const override {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }

  void gemm_block(const GemmArgs& g, std::size_t i0, std::size_t i1,
                  std::size_t j0, std::size_t j1) const override {
    static thread_local AlignedBuf a_buf, b_buf;
    alignas(64) float ct[MR * NR];
    for (std::size_t jc = j0; jc < j1; jc += NC) {
      const std::size_t nc = (j1 - jc) < NC ? (j1 - jc) : NC;
      for (std::size_t pc = 0; pc < g.k; pc += KC) {
        const std::size_t kc = (g.k - pc) < KC ? (g.k - pc) : KC;
        float* bp = b_buf.ensure(round_up(nc, NR) * kc);
        pack_b<NR>(g, pc, kc, jc, nc, bp);
        for (std::size_t ic = i0; ic < i1; ic += MC) {
          const std::size_t mc = (i1 - ic) < MC ? (i1 - ic) : MC;
          float* ap = a_buf.ensure(round_up(mc, MR) * kc);
          pack_a<MR>(g, ic, mc, pc, kc, ap);
          for (std::size_t js = 0; js < nc; js += NR) {
            const float* bs = bp + js * kc;
            const std::size_t vn = (nc - js) < NR ? (nc - js) : NR;
            for (std::size_t is = 0; is < mc; is += MR) {
              micro_6x16(ap + is * kc, bs, kc, ct);
              const std::size_t vm = (mc - is) < MR ? (mc - is) : MR;
              for (std::size_t r = 0; r < vm; ++r) {
                float* crow = g.c + (ic + is + r) * g.n + jc + js;
                const float* trow = ct + r * NR;
                for (std::size_t c = 0; c < vn; ++c) crow[c] += trow[c];
              }
            }
          }
        }
      }
    }
    apply_epilogue(g, i0, i1, j0, j1);
  }

  void spmm_rows(const SpmmArgs& s, std::size_t r0,
                 std::size_t r1) const override {
    const std::size_t cols = s.cols;
    for (std::size_t r = r0; r < r1; ++r) {
      float* o = s.out + r * cols;
      for (std::uint32_t e = s.row_ptr[r]; e < s.row_ptr[r + 1]; ++e) {
        const float v = s.vals[e];
        const float* row =
            s.x + static_cast<std::size_t>(s.col_idx[e]) * cols;
        const __m256 vv = _mm256_set1_ps(v);
        std::size_t j = 0;
        for (; j + 8 <= cols; j += 8) {
          const __m256 acc = _mm256_fmadd_ps(vv, _mm256_loadu_ps(row + j),
                                             _mm256_loadu_ps(o + j));
          _mm256_storeu_ps(o + j, acc);
        }
        for (; j < cols; ++j) o[j] += v * row[j];
      }
      if (s.tanh) {
        for (std::size_t j = 0; j < cols; ++j) o[j] = fast_tanh(o[j]);
      }
    }
  }
};

}  // namespace

const KernelBackend& avx2_backend() {
  static const Avx2Backend b;
  return b;
}

}  // namespace mvgnn::tensor::backend

#endif  // __AVX2__ && __FMA__
