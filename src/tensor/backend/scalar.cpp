// Scalar reference backend: the universal fallback and the semantic ground
// truth the SIMD backends are tested against. Plain loops, fixed ascending-K
// accumulation per element (the determinism contract), no packing. The
// (ta,tb) combinations are separate loop nests so each one keeps unit-stride
// access on at least one operand instead of materializing a transpose.
#include "tensor/backend/backend.hpp"

namespace mvgnn::tensor::backend {

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  [[nodiscard]] const char* name() const override { return "scalar"; }
  [[nodiscard]] int id() const override { return 0; }
  [[nodiscard]] bool usable() const override { return true; }

  void gemm_block(const GemmArgs& g, std::size_t i0, std::size_t i1,
                  std::size_t j0, std::size_t j1) const override {
    if (!g.ta && !g.tb) {
      // K-outer so the j-loop is a unit-stride fused multiply-add; the
      // zero-skip matters for SortPooling's padded all-zero rows.
      for (std::size_t i = i0; i < i1; ++i) {
        float* ci = g.c + i * g.n;
        const float* ai = g.a + i * g.k;
        for (std::size_t p = 0; p < g.k; ++p) {
          const float av = ai[p];
          if (av == 0.0f) continue;  // sparse-ish adjacency rows are common
          const float* bp = g.b + p * g.n;
          for (std::size_t j = j0; j < j1; ++j) ci[j] += av * bp[j];
        }
      }
    } else if (!g.ta && g.tb) {
      // Both operands row-contiguous over K: per-element dot products.
      for (std::size_t i = i0; i < i1; ++i) {
        float* ci = g.c + i * g.n;
        const float* ai = g.a + i * g.k;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* bj = g.b + j * g.k;
          float acc = 0.0f;
          for (std::size_t p = 0; p < g.k; ++p) acc += ai[p] * bj[p];
          ci[j] += acc;
        }
      }
    } else if (g.ta && !g.tb) {
      for (std::size_t i = i0; i < i1; ++i) {
        float* ci = g.c + i * g.n;
        for (std::size_t p = 0; p < g.k; ++p) {
          const float av = g.a[p * g.m + i];
          if (av == 0.0f) continue;
          const float* bp = g.b + p * g.n;
          for (std::size_t j = j0; j < j1; ++j) ci[j] += av * bp[j];
        }
      }
    } else {
      for (std::size_t i = i0; i < i1; ++i) {
        float* ci = g.c + i * g.n;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* bj = g.b + j * g.k;
          float acc = 0.0f;
          for (std::size_t p = 0; p < g.k; ++p) acc += g.a[p * g.m + i] * bj[p];
          ci[j] += acc;
        }
      }
    }
    apply_epilogue(g, i0, i1, j0, j1);
  }

  void spmm_rows(const SpmmArgs& s, std::size_t r0,
                 std::size_t r1) const override {
    for (std::size_t r = r0; r < r1; ++r) {
      float* o = s.out + r * s.cols;
      for (std::uint32_t e = s.row_ptr[r]; e < s.row_ptr[r + 1]; ++e) {
        const float v = s.vals[e];
        const float* row = s.x + static_cast<std::size_t>(s.col_idx[e]) * s.cols;
        for (std::size_t j = 0; j < s.cols; ++j) o[j] += v * row[j];
      }
      if (s.tanh) {
        for (std::size_t j = 0; j < s.cols; ++j) o[j] = fast_tanh(o[j]);
      }
    }
  }
};

}  // namespace

const KernelBackend& scalar_backend() {
  static const ScalarBackend b;
  return b;
}

}  // namespace mvgnn::tensor::backend
