// Runtime-dispatched kernel backends for the tensor hot path.
//
// A `KernelBackend` implements the two primitives everything in the model
// bottoms out in — dense GEMM blocks and CSR spmm row-ranges — plus a fused
// bias/tanh epilogue so callers never materialize `matmul -> add -> tanh`
// intermediates. The drivers in gemm.cpp own zeroing, metrics and the
// TaskGroup fan-out; a backend only ever computes a rectangular block of C
// (or a row range of the spmm output) and always *accumulates* into it.
//
// Determinism contract (tested in tests/test_backend.cpp): every output
// element is produced by exactly one task, and each backend accumulates the
// K dimension in a fixed order that does not depend on the block boundaries
// it was handed. A fixed backend is therefore bit-identical across runs and
// across thread counts; *different* backends agree only to ~1e-5 (different
// FMA grouping), which is why the dispatch is observable (`tensor.backend`
// gauge, `--force-backend`) and pinned in CI.
//
// Adding a backend (docs/kernels.md has the walkthrough): implement the
// interface in backend/<name>.cpp, compile-gate it in src/tensor/
// CMakeLists.txt with a MVGNN_HAVE_BACKEND_<NAME> define, and register it in
// the preference list in dispatch.cpp. Callers never change — that is the
// slot a future GPU/MPI backend plugs into.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tensor/backend/act.hpp"

namespace mvgnn::tensor {

/// Fused tail applied to a finished output block. `bias_col` adds a length-n
/// row vector to every row (linear-layer bias); `bias_row` adds bias_row[i]
/// across row i (conv out-channel bias); `tanh` maps the block through
/// fast_tanh. Only meaningful with accumulate=false — the driver enforces it.
struct Epilogue {
  const float* bias_col = nullptr;  // [n], added to every row
  const float* bias_row = nullptr;  // [m], added across each row
  bool tanh = false;

  [[nodiscard]] bool empty() const {
    return bias_col == nullptr && bias_row == nullptr && !tanh;
  }
};

/// One GEMM problem: C[m,n] += op(A)[m,k] * op(B)[k,n], row-major. `ta`/`tb`
/// interpret A/B as transposed (storage k x m / n x k); backends read the
/// operands through strided packing, nothing is ever materialized.
struct GemmArgs {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  std::size_t m = 0, k = 0, n = 0;
  bool ta = false, tb = false;
  Epilogue ep;
};

/// One CSR spmm problem: out[r,:] += sum_e vals[e] * x[col_idx[e],:] over
/// row r's entries, row width `cols`. `tanh` maps each finished row through
/// fast_tanh (the GCN-stack activation).
struct SpmmArgs {
  const std::uint32_t* row_ptr = nullptr;
  const std::uint32_t* col_idx = nullptr;
  const float* vals = nullptr;
  const float* x = nullptr;
  float* out = nullptr;
  std::size_t cols = 0;
  bool tanh = false;
};

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// Stable id surfaced as the `tensor.backend` gauge: 0 scalar, 1 avx2,
  /// 2 neon. Frozen — report rendering decodes it offline.
  [[nodiscard]] virtual int id() const = 0;
  /// Runtime CPU-feature check; compiled-in but non-usable backends are
  /// skipped by the dispatcher and rejected by force().
  [[nodiscard]] virtual bool usable() const = 0;

  /// C rows [i0,i1) x cols [j0,j1) += op(A)*op(B) over the full K range,
  /// then g.ep applied to exactly that block.
  virtual void gemm_block(const GemmArgs& g, std::size_t i0, std::size_t i1,
                          std::size_t j0, std::size_t j1) const = 0;

  /// out rows [r0,r1) += A[r0:r1,:] * X (CSR), then optional tanh per row.
  virtual void spmm_rows(const SpmmArgs& s, std::size_t r0,
                         std::size_t r1) const = 0;
};

namespace backend {

/// The dispatched backend: forced one if set, else MVGNN_BACKEND env when it
/// names a usable backend, else the first usable entry of all(). Selection
/// is published once to the `tensor.backend` gauge and the log.
const KernelBackend& active();

/// Always-available scalar reference backend.
const KernelBackend& scalar_backend();

/// Every compiled-in backend in dispatch preference order (SIMD first,
/// scalar last). Entries may be non-usable on this CPU.
const std::vector<const KernelBackend*>& all();

/// Forces dispatch to `name` ("scalar", "avx2", "neon"); "auto" re-runs the
/// automatic selection. Returns false (and changes nothing) when the name is
/// unknown, not compiled in, or not usable on this CPU.
bool force(std::string_view name);

/// Decodes a `tensor.backend` gauge value; "unknown" for ids never issued.
const char* name_for_id(int id);

/// Shared fused tail, inlined into each backend TU so it vectorizes with
/// that TU's ISA flags. Applies `g.ep` to C rows [i0,i1) x cols [j0,j1).
inline void apply_epilogue(const GemmArgs& g, std::size_t i0, std::size_t i1,
                           std::size_t j0, std::size_t j1) {
  if (g.ep.empty()) return;
  for (std::size_t i = i0; i < i1; ++i) {
    float* row = g.c + i * g.n;
    if (g.ep.bias_col != nullptr) {
      for (std::size_t j = j0; j < j1; ++j) row[j] += g.ep.bias_col[j];
    }
    if (g.ep.bias_row != nullptr) {
      const float bi = g.ep.bias_row[i];
      for (std::size_t j = j0; j < j1; ++j) row[j] += bi;
    }
    if (g.ep.tanh) {
      for (std::size_t j = j0; j < j1; ++j) row[j] = fast_tanh(row[j]);
    }
  }
}

/// Strided element access that folds the transpose flags away — packing
/// routines read operands through these instead of materializing transposes.
inline float gemm_a_at(const GemmArgs& g, std::size_t i, std::size_t p) {
  return g.ta ? g.a[p * g.m + i] : g.a[i * g.k + p];
}
inline float gemm_b_at(const GemmArgs& g, std::size_t p, std::size_t j) {
  return g.tb ? g.b[j * g.k + p] : g.b[p * g.n + j];
}

}  // namespace backend

}  // namespace mvgnn::tensor
