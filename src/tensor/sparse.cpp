#include "tensor/sparse.hpp"

#include <algorithm>
#include <numeric>

namespace mvgnn::ag {

CsrMatrix CsrMatrix::from_coo(std::size_t rows, std::size_t cols,
                              const std::vector<std::uint32_t>& r,
                              const std::vector<std::uint32_t>& c,
                              const std::vector<float>& v) {
  if (r.size() != c.size() || r.size() != v.size()) {
    throw TensorError("CsrMatrix::from_coo: triplet arrays differ in length");
  }
  auto rep = std::make_shared<Rep>();
  rep->rows = rows;
  rep->cols = cols;
  std::vector<std::size_t> order(r.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return r[x] != r[y] ? r[x] < r[y] : c[x] < c[y];
  });
  rep->row_ptr.assign(rows + 1, 0);
  rep->col_idx.reserve(r.size());
  rep->vals.reserve(r.size());
  std::uint32_t last_row = 0, last_col = 0;
  for (const std::size_t e : order) {
    if (r[e] >= rows || c[e] >= cols) {
      throw TensorError("CsrMatrix::from_coo: index out of range");
    }
    if (!rep->vals.empty() && r[e] == last_row && c[e] == last_col) {
      rep->vals.back() += v[e];  // duplicate (row, col): sum
      continue;
    }
    rep->col_idx.push_back(c[e]);
    rep->vals.push_back(v[e]);
    ++rep->row_ptr[r[e] + 1];
    last_row = r[e];
    last_col = c[e];
  }
  for (std::size_t i = 0; i < rows; ++i) rep->row_ptr[i + 1] += rep->row_ptr[i];
  return CsrMatrix(std::move(rep));
}

CsrMatrix CsrMatrix::from_dense(const Tensor& dense, float eps) {
  auto rep = std::make_shared<Rep>();
  rep->rows = dense.rows();
  rep->cols = dense.cols();
  rep->row_ptr.assign(rep->rows + 1, 0);
  const float* x = dense.data();
  for (std::size_t i = 0; i < rep->rows; ++i) {
    for (std::size_t j = 0; j < rep->cols; ++j) {
      const float v = x[i * rep->cols + j];
      if (v > eps || v < -eps || (eps == 0.0f && v != 0.0f)) {
        rep->col_idx.push_back(static_cast<std::uint32_t>(j));
        rep->vals.push_back(v);
      }
    }
    rep->row_ptr[i + 1] = static_cast<std::uint32_t>(rep->col_idx.size());
  }
  return CsrMatrix(std::move(rep));
}

CsrMatrix CsrMatrix::block_diag(const std::vector<const CsrMatrix*>& blocks) {
  auto rep = std::make_shared<Rep>();
  std::size_t nnz = 0;
  for (const CsrMatrix* b : blocks) {
    if (!b || !b->defined()) {
      throw TensorError("CsrMatrix::block_diag: undefined block");
    }
    rep->rows += b->rows();
    rep->cols += b->cols();
    nnz += b->nnz();
  }
  rep->row_ptr.reserve(rep->rows + 1);
  rep->col_idx.reserve(nnz);
  rep->vals.reserve(nnz);
  rep->row_ptr.assign(1, 0);
  std::uint32_t col_base = 0;
  for (const CsrMatrix* b : blocks) {
    const auto& rp = b->row_ptr();
    const auto& ci = b->col_idx();
    const auto& vs = b->values();
    for (std::size_t i = 0; i < b->rows(); ++i) {
      for (std::uint32_t e = rp[i]; e < rp[i + 1]; ++e) {
        rep->col_idx.push_back(col_base + ci[e]);
        rep->vals.push_back(vs[e]);
      }
      rep->row_ptr.push_back(static_cast<std::uint32_t>(rep->col_idx.size()));
    }
    col_base += static_cast<std::uint32_t>(b->cols());
  }
  return CsrMatrix(std::move(rep));
}

Tensor CsrMatrix::to_dense() const {
  if (!rep_) throw TensorError("CsrMatrix::to_dense on undefined matrix");
  std::vector<float> out(rep_->rows * rep_->cols, 0.0f);
  for (std::size_t i = 0; i < rep_->rows; ++i) {
    for (std::uint32_t e = rep_->row_ptr[i]; e < rep_->row_ptr[i + 1]; ++e) {
      out[i * rep_->cols + rep_->col_idx[e]] += rep_->vals[e];
    }
  }
  return Tensor::from_data({rep_->rows, rep_->cols}, std::move(out));
}

std::shared_ptr<CsrMatrix::Rep> CsrMatrix::transpose_rep(const Rep& a) {
  auto t = std::make_shared<Rep>();
  t->rows = a.cols;
  t->cols = a.rows;
  t->row_ptr.assign(t->rows + 1, 0);
  t->col_idx.resize(a.col_idx.size());
  t->vals.resize(a.vals.size());
  // Counting sort by destination row (= source column).
  for (const std::uint32_t c : a.col_idx) ++t->row_ptr[c + 1];
  for (std::size_t i = 0; i < t->rows; ++i) t->row_ptr[i + 1] += t->row_ptr[i];
  std::vector<std::uint32_t> cursor(t->row_ptr.begin(), t->row_ptr.end() - 1);
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::uint32_t e = a.row_ptr[i]; e < a.row_ptr[i + 1]; ++e) {
      const std::uint32_t slot = cursor[a.col_idx[e]]++;
      t->col_idx[slot] = static_cast<std::uint32_t>(i);
      t->vals[slot] = a.vals[e];
    }
  }
  return t;
}

CsrMatrix CsrMatrix::transposed() const {
  if (!rep_) throw TensorError("CsrMatrix::transposed on undefined matrix");
  std::call_once(rep_->t_once, [this] { rep_->t = transpose_rep(*rep_); });
  return CsrMatrix(rep_->t);
}

}  // namespace mvgnn::ag
