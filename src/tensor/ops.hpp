// Differentiable operations over ag::Tensor.
//
// Every function builds one graph node eagerly; backward closures pull the
// output gradient into the inputs. Only what the MV-GNN / DGCNN / LSTM /
// baselines need is implemented — shapes are validated loudly instead of
// broadcast silently.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvgnn::ag {

// ---- linear algebra -------------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n] (parallel GEMM underneath).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor transpose(const Tensor& a);

// ---- elementwise ------------------------------------------------------
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);  // same shape or b=[1,n] row bias
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);  // same shape
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);  // same shape
[[nodiscard]] Tensor scale(const Tensor& a, float s);
[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor tanh_t(const Tensor& a);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor exp_t(const Tensor& a);
[[nodiscard]] Tensor log_t(const Tensor& a);  // input clamped at 1e-12

// ---- reductions -------------------------------------------------------
[[nodiscard]] Tensor sum(const Tensor& a);        // -> [1,1]
[[nodiscard]] Tensor mean(const Tensor& a);       // -> [1,1]
[[nodiscard]] Tensor mean_rows(const Tensor& a);  // [n,c] -> [1,c]
[[nodiscard]] Tensor max_rows(const Tensor& a);   // [n,c] -> [1,c] column max

// ---- shape ------------------------------------------------------------
[[nodiscard]] Tensor reshape(const Tensor& a, Shape s);
[[nodiscard]] Tensor concat_cols(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor concat_rows(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor slice_rows(const Tensor& a, std::size_t r0, std::size_t r1);
[[nodiscard]] Tensor slice_cols(const Tensor& a, std::size_t c0, std::size_t c1);
/// Rows may repeat; gradients accumulate into the source rows.
[[nodiscard]] Tensor gather_rows(const Tensor& a,
                                 const std::vector<std::uint32_t>& rows);

// ---- regularization / classification ----------------------------------
/// Inverted dropout; identity when !training or p == 0.
[[nodiscard]] Tensor dropout(const Tensor& a, float p, bool training,
                             par::Rng& rng);
/// Row-wise softmax (forward + exact backward).
[[nodiscard]] Tensor softmax_rows(const Tensor& a);
/// Mean cross-entropy over rows from raw logits; numerically stable fused
/// log-softmax ("softmax loss" in the paper). `labels[i]` in [0, cols).
[[nodiscard]] Tensor cross_entropy_logits(const Tensor& logits,
                                          const std::vector<int>& labels);

// ---- DGCNN-specific ----------------------------------------------------
/// SortPooling (Zhang et al. 2018): sorts rows by the last column
/// descending and keeps the first k (zero-padding when n < k). Gradients
/// route back to the selected rows.
[[nodiscard]] Tensor sort_pool(const Tensor& a, std::size_t k);
/// 1-D convolution: x[in_ch, L], w[out_ch, in_ch*ksize], b[out_ch]
/// -> y[out_ch, (L-ksize)/stride + 1].
[[nodiscard]] Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
                            std::size_t ksize, std::size_t stride);
/// Max-pooling along length: x[c, L] -> [c, L/window] (floor).
[[nodiscard]] Tensor maxpool1d(const Tensor& x, std::size_t window);

}  // namespace mvgnn::ag
