// Differentiable operations over ag::Tensor.
//
// Every function builds one graph node eagerly; backward closures pull the
// output gradient into the inputs. Only what the MV-GNN / DGCNN / LSTM /
// baselines need is implemented — shapes are validated loudly instead of
// broadcast silently.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace mvgnn::ag {

// ---- linear algebra -------------------------------------------------------
/// C[m,n] = A[m,k] * B[k,n] (parallel GEMM underneath).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A * op(W) + bias in one GEMM with the bias fused into the kernel
/// epilogue (docs/kernels.md) — no matmul/add intermediates. `tw` reads W as
/// transposed (storage [n,k]); bias is [1,n].
[[nodiscard]] Tensor matmul_bias(const Tensor& a, const Tensor& w,
                                 const Tensor& bias, bool tw = false);
/// tanh(A * op(W) + bias) with bias and activation both fused into the GEMM
/// tail; backward applies the 1-y² chain before the gradient GEMMs.
[[nodiscard]] Tensor matmul_bias_tanh(const Tensor& a, const Tensor& w,
                                      const Tensor& bias, bool tw = false);
[[nodiscard]] Tensor transpose(const Tensor& a);
/// Sparse-dense product Y[m,n] = A[m,k] * X[k,n] with a parallel-for-over-
/// rows kernel. A is a constant (adjacencies carry no gradient); the
/// backward pass computes dX = A^T dY over A's cached transpose.
[[nodiscard]] Tensor spmm(const CsrMatrix& a, const Tensor& x);
/// tanh(A * X) with the activation fused into each finished spmm row — the
/// GCN-stack hot path. Backward: dX = A^T (dY ⊙ (1 - y²)).
[[nodiscard]] Tensor spmm_tanh(const CsrMatrix& a, const Tensor& x);

// ---- elementwise ------------------------------------------------------
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);  // same shape or b=[1,n] row bias
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);  // same shape
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);  // same shape
[[nodiscard]] Tensor scale(const Tensor& a, float s);
[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor tanh_t(const Tensor& a);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor exp_t(const Tensor& a);
[[nodiscard]] Tensor log_t(const Tensor& a);  // input clamped at 1e-12

// ---- reductions -------------------------------------------------------
[[nodiscard]] Tensor sum(const Tensor& a);        // -> [1,1]
[[nodiscard]] Tensor mean(const Tensor& a);       // -> [1,1]
[[nodiscard]] Tensor mean_rows(const Tensor& a);  // [n,c] -> [1,c]
[[nodiscard]] Tensor max_rows(const Tensor& a);   // [n,c] -> [1,c] column max

// ---- shape ------------------------------------------------------------
[[nodiscard]] Tensor reshape(const Tensor& a, Shape s);
[[nodiscard]] Tensor concat_cols(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor concat_rows(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor slice_rows(const Tensor& a, std::size_t r0, std::size_t r1);
[[nodiscard]] Tensor slice_cols(const Tensor& a, std::size_t c0, std::size_t c1);
/// Rows may repeat; gradients accumulate into the source rows.
[[nodiscard]] Tensor gather_rows(const Tensor& a,
                                 const std::vector<std::uint32_t>& rows);

// ---- regularization / classification ----------------------------------
/// Inverted dropout; identity when !training or p == 0.
[[nodiscard]] Tensor dropout(const Tensor& a, float p, bool training,
                             par::Rng& rng);
/// Row-wise softmax (forward + exact backward).
[[nodiscard]] Tensor softmax_rows(const Tensor& a);
/// Mean cross-entropy over rows from raw logits; numerically stable fused
/// log-softmax ("softmax loss" in the paper). `labels[i]` in [0, cols).
[[nodiscard]] Tensor cross_entropy_logits(const Tensor& logits,
                                          const std::vector<int>& labels);

// ---- DGCNN-specific ----------------------------------------------------
/// SortPooling (Zhang et al. 2018): sorts rows by the last column
/// descending and keeps the first k (zero-padding when n < k). Gradients
/// route back to the selected rows.
[[nodiscard]] Tensor sort_pool(const Tensor& a, std::size_t k);
/// Segment-aware SortPooling for block-diagonal graph batches: rows of
/// segment b live in [offsets[b], offsets[b+1]) and are pooled
/// independently; the output stacks the B per-graph [k, c] blocks into
/// [B*k, c]. `offsets` must start at 0, end at a.rows(), and be
/// non-decreasing. sort_pool(a, k) == sort_pool_segments(a, k, {0, n}).
[[nodiscard]] Tensor sort_pool_segments(
    const Tensor& a, std::size_t k,
    const std::vector<std::uint32_t>& offsets);
/// Flattens per-segment column blocks into rows: for each start s_b, the
/// block x[:, s_b : s_b+width] of x[C, L] becomes row b of the [B, C*width]
/// output (row-major over channels then columns — the same layout
/// reshape(x_b, {1, C*width}) would give for a single segment). Columns
/// outside every block receive zero gradient, which lets a batched stride-1
/// conv over concatenated segments simply discard the outputs that straddle
/// segment boundaries.
[[nodiscard]] Tensor segment_cols_to_rows(
    const Tensor& x, const std::vector<std::uint32_t>& starts,
    std::size_t width);
/// 1-D convolution: x[in_ch, L], w[out_ch, in_ch*ksize], b[out_ch]
/// -> y[out_ch, (L-ksize)/stride + 1].
[[nodiscard]] Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
                            std::size_t ksize, std::size_t stride);
/// Segment-aware conv1d for block-diagonal batches: segment s covers
/// columns [starts[s], starts[s]+seg_width) of x and is convolved
/// independently, so no window straddles a segment boundary and nothing is
/// computed for the straddling positions a plain conv1d over the
/// concatenation would produce. Output is [out_ch, S*lseg] with
/// lseg = (seg_width-ksize)/stride + 1; segment s's windows land in columns
/// [s*lseg, (s+1)*lseg). conv1d(x,...) == conv1d_segments(x,..., {0}, L).
[[nodiscard]] Tensor conv1d_segments(const Tensor& x, const Tensor& w,
                                     const Tensor& b, std::size_t ksize,
                                     std::size_t stride,
                                     const std::vector<std::uint32_t>& starts,
                                     std::size_t seg_width);
/// Max-pooling along length: x[c, L] -> [c, L/window] (floor).
[[nodiscard]] Tensor maxpool1d(const Tensor& x, std::size_t window);

}  // namespace mvgnn::ag
