#include "frontend/parser.hpp"

#include <unordered_map>
#include <utility>

namespace mvgnn::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program run() {
    Program prog;
    while (!at(Tok::End)) {
      if (at(Tok::KwConst)) {
        prog.consts.push_back(parse_const());
      } else {
        prog.funcs.push_back(parse_func());
      }
    }
    return prog;
  }

 private:
  // ---- token helpers ----------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  [[nodiscard]] bool at(Tok k, std::size_t ahead = 0) const {
    return peek(ahead).kind == k;
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool match(Tok k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }
  const Token& expect(Tok k, const char* what) {
    if (!at(k)) {
      throw FrontendError(std::string("expected ") + tok_name(k) + " " + what +
                              ", found " + tok_name(peek().kind),
                          peek().loc);
    }
    return advance();
  }

  [[nodiscard]] bool at_type() const {
    return at(Tok::KwInt) || at(Tok::KwFloat) || at(Tok::KwVoid);
  }

  /// type := ('int'|'float'|'void') ('[' ']')?
  TypeKind parse_type() {
    TypeKind base;
    if (match(Tok::KwInt)) {
      base = TypeKind::Int;
    } else if (match(Tok::KwFloat)) {
      base = TypeKind::Float;
    } else if (match(Tok::KwVoid)) {
      base = TypeKind::Void;
    } else {
      throw FrontendError("expected type", peek().loc);
    }
    if (at(Tok::LBracket) && at(Tok::RBracket, 1)) {
      advance();
      advance();
      if (base == TypeKind::Int) return TypeKind::ArrInt;
      if (base == TypeKind::Float) return TypeKind::ArrFloat;
      throw FrontendError("void[] is not a type", peek().loc);
    }
    return base;
  }

  // ---- declarations -------------------------------------------------------

  /// const := 'const' 'int' IDENT '=' constExpr ';'
  /// Values are folded eagerly so later `float t[N]` sizes can use them.
  ConstDecl parse_const() {
    expect(Tok::KwConst, "before constant");
    expect(Tok::KwInt, "in constant declaration");
    const Token& name = expect(Tok::Ident, "constant name");
    expect(Tok::Assign, "in constant declaration");
    const std::int64_t v = parse_const_expr();
    expect(Tok::Semi, "after constant");
    ConstDecl d;
    d.name = name.text;
    d.value = v;
    d.loc = name.loc;
    const_env_[d.name] = v;
    return d;
  }

  /// Minimal constant-expression evaluator: + - * / % over int literals and
  /// previously declared constants, with parentheses and unary minus.
  std::int64_t parse_const_expr() { return const_add(); }
  std::int64_t const_add() {
    std::int64_t v = const_mul();
    for (;;) {
      if (match(Tok::Plus)) {
        v += const_mul();
      } else if (match(Tok::Minus)) {
        v -= const_mul();
      } else {
        return v;
      }
    }
  }
  std::int64_t const_mul() {
    std::int64_t v = const_prim();
    for (;;) {
      if (match(Tok::Star)) {
        v *= const_prim();
      } else if (match(Tok::Slash)) {
        const std::int64_t d = const_prim();
        if (d == 0) throw FrontendError("division by zero in constant", peek().loc);
        v /= d;
      } else if (match(Tok::Percent)) {
        const std::int64_t d = const_prim();
        if (d == 0) throw FrontendError("modulo by zero in constant", peek().loc);
        v %= d;
      } else {
        return v;
      }
    }
  }
  std::int64_t const_prim() {
    if (match(Tok::Minus)) return -const_prim();
    if (at(Tok::IntLit)) return advance().int_val;
    if (match(Tok::LParen)) {
      const std::int64_t v = const_add();
      expect(Tok::RParen, "in constant expression");
      return v;
    }
    if (at(Tok::Ident)) {
      const Token& t = advance();
      if (auto it = const_env_.find(t.text); it != const_env_.end()) {
        return it->second;
      }
      throw FrontendError("unknown constant '" + t.text + "'", t.loc);
    }
    throw FrontendError("expected constant expression", peek().loc);
  }

  std::unique_ptr<FuncDecl> parse_func() {
    auto fn = std::make_unique<FuncDecl>();
    fn->loc = peek().loc;
    fn->return_type = parse_type();
    fn->name = expect(Tok::Ident, "function name").text;
    expect(Tok::LParen, "in function declaration");
    if (!at(Tok::RParen)) {
      do {
        ParamDecl p;
        p.loc = peek().loc;
        p.type = parse_type();
        p.name = expect(Tok::Ident, "parameter name").text;
        fn->params.push_back(std::move(p));
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "after parameters");
    fn->body = parse_block();
    return fn;
  }

  // ---- statements ---------------------------------------------------------

  StmtPtr parse_block() {
    const Token& open = expect(Tok::LBrace, "to open block");
    auto blk = std::make_unique<Stmt>(StmtKind::Block, open.loc);
    while (!at(Tok::RBrace) && !at(Tok::End)) {
      blk->body.push_back(parse_stmt());
    }
    const Token& close = expect(Tok::RBrace, "to close block");
    blk->end_line = close.loc.line;
    return blk;
  }

  StmtPtr parse_stmt() {
    if (at(Tok::LBrace)) return parse_block();
    if (at_type()) return parse_var_decl();
    if (at(Tok::KwIf)) return parse_if();
    if (at(Tok::KwFor)) return parse_for();
    if (at(Tok::KwWhile)) return parse_while();
    if (at(Tok::KwReturn)) {
      auto st = std::make_unique<Stmt>(StmtKind::Return, advance().loc);
      if (!at(Tok::Semi)) st->ret_value = parse_expr();
      expect(Tok::Semi, "after return");
      st->end_line = st->loc.line;
      return st;
    }
    if (at(Tok::KwBreak)) {
      auto st = std::make_unique<Stmt>(StmtKind::Break, advance().loc);
      expect(Tok::Semi, "after break");
      st->end_line = st->loc.line;
      return st;
    }
    if (at(Tok::KwContinue)) {
      auto st = std::make_unique<Stmt>(StmtKind::Continue, advance().loc);
      expect(Tok::Semi, "after continue");
      st->end_line = st->loc.line;
      return st;
    }
    // Assignment or expression statement.
    StmtPtr st = parse_assign_or_expr();
    expect(Tok::Semi, "after statement");
    return st;
  }

  /// var decl: `type name (= expr)? ;`  or  `type name [ expr ] ;`
  StmtPtr parse_var_decl() {
    const ir::SourceLoc loc = peek().loc;
    const TypeKind ty = parse_type();
    if (!is_scalar(ty)) {
      throw FrontendError("array-typed locals use `type name[size]` syntax",
                          loc);
    }
    const Token& name = expect(Tok::Ident, "variable name");
    auto st = std::make_unique<Stmt>(StmtKind::VarDecl, loc);
    st->name = name.text;
    st->end_line = loc.line;
    if (match(Tok::LBracket)) {
      st->decl_type = (ty == TypeKind::Int) ? TypeKind::ArrInt : TypeKind::ArrFloat;
      st->array_size = parse_expr();
      expect(Tok::RBracket, "after array size");
    } else {
      st->decl_type = ty;
      if (match(Tok::Assign)) st->init = parse_expr();
    }
    expect(Tok::Semi, "after declaration");
    return st;
  }

  StmtPtr parse_if() {
    const Token& kw = expect(Tok::KwIf, "");
    auto st = std::make_unique<Stmt>(StmtKind::If, kw.loc);
    expect(Tok::LParen, "after if");
    st->cond = parse_expr();
    expect(Tok::RParen, "after condition");
    st->then_block = parse_block();
    st->end_line = st->then_block->end_line;
    if (match(Tok::KwElse)) {
      st->else_block = at(Tok::KwIf) ? parse_if() : parse_block();
      st->end_line = st->else_block->end_line;
    }
    return st;
  }

  StmtPtr parse_for() {
    const Token& kw = expect(Tok::KwFor, "");
    auto st = std::make_unique<Stmt>(StmtKind::For, kw.loc);
    expect(Tok::LParen, "after for");
    if (at_type()) {
      // `for (int i = 0; ...)` — inline declaration.
      const ir::SourceLoc loc = peek().loc;
      const TypeKind ty = parse_type();
      const Token& name = expect(Tok::Ident, "loop variable");
      auto decl = std::make_unique<Stmt>(StmtKind::VarDecl, loc);
      decl->decl_type = ty;
      decl->name = name.text;
      decl->end_line = loc.line;
      expect(Tok::Assign, "in loop init");
      decl->init = parse_expr();
      st->for_init = std::move(decl);
    } else {
      st->for_init = parse_assign_or_expr();
      if (st->for_init->kind != StmtKind::Assign) {
        throw FrontendError("for-init must be an assignment", kw.loc);
      }
    }
    expect(Tok::Semi, "after loop init");
    st->cond = parse_expr();
    expect(Tok::Semi, "after loop condition");
    st->for_step = parse_assign_or_expr();
    if (st->for_step->kind != StmtKind::Assign) {
      throw FrontendError("for-step must be an assignment", kw.loc);
    }
    expect(Tok::RParen, "after loop header");
    st->loop_body = parse_block();
    st->end_line = st->loop_body->end_line;
    return st;
  }

  StmtPtr parse_while() {
    const Token& kw = expect(Tok::KwWhile, "");
    auto st = std::make_unique<Stmt>(StmtKind::While, kw.loc);
    expect(Tok::LParen, "after while");
    st->cond = parse_expr();
    expect(Tok::RParen, "after condition");
    st->loop_body = parse_block();
    st->end_line = st->loop_body->end_line;
    return st;
  }

  /// Parses `lvalue op= expr` or a bare expression statement (function call).
  StmtPtr parse_assign_or_expr() {
    const ir::SourceLoc loc = peek().loc;
    ExprPtr e = parse_expr();
    AssignOp op;
    if (match(Tok::Assign)) {
      op = AssignOp::Set;
    } else if (match(Tok::PlusAssign)) {
      op = AssignOp::Add;
    } else if (match(Tok::MinusAssign)) {
      op = AssignOp::Sub;
    } else if (match(Tok::StarAssign)) {
      op = AssignOp::Mul;
    } else if (match(Tok::SlashAssign)) {
      op = AssignOp::Div;
    } else {
      auto st = std::make_unique<Stmt>(StmtKind::ExprStmt, loc);
      st->value = std::move(e);
      st->end_line = loc.line;
      return st;
    }
    if (e->kind != ExprKind::VarRef && e->kind != ExprKind::Index) {
      throw FrontendError("assignment target must be a variable or element",
                          loc);
    }
    auto st = std::make_unique<Stmt>(StmtKind::Assign, loc);
    st->assign_op = op;
    st->target = std::move(e);
    st->value = parse_expr();
    st->end_line = loc.line;
    return st;
  }

  // ---- expressions ----------------------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (at(Tok::OrOr)) {
      const ir::SourceLoc loc = advance().loc;
      e = make_bin(BinOp::LOr, std::move(e), parse_and(), loc);
    }
    return e;
  }
  ExprPtr parse_and() {
    ExprPtr e = parse_equality();
    while (at(Tok::AndAnd)) {
      const ir::SourceLoc loc = advance().loc;
      e = make_bin(BinOp::LAnd, std::move(e), parse_equality(), loc);
    }
    return e;
  }
  ExprPtr parse_equality() {
    ExprPtr e = parse_rel();
    for (;;) {
      if (at(Tok::Eq) || at(Tok::Ne)) {
        const BinOp op = at(Tok::Eq) ? BinOp::Eq : BinOp::Ne;
        const ir::SourceLoc loc = advance().loc;
        e = make_bin(op, std::move(e), parse_rel(), loc);
      } else {
        return e;
      }
    }
  }
  ExprPtr parse_rel() {
    ExprPtr e = parse_add();
    for (;;) {
      BinOp op;
      if (at(Tok::Lt)) {
        op = BinOp::Lt;
      } else if (at(Tok::Le)) {
        op = BinOp::Le;
      } else if (at(Tok::Gt)) {
        op = BinOp::Gt;
      } else if (at(Tok::Ge)) {
        op = BinOp::Ge;
      } else {
        return e;
      }
      const ir::SourceLoc loc = advance().loc;
      e = make_bin(op, std::move(e), parse_add(), loc);
    }
  }
  ExprPtr parse_add() {
    ExprPtr e = parse_mul();
    for (;;) {
      if (at(Tok::Plus) || at(Tok::Minus)) {
        const BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
        const ir::SourceLoc loc = advance().loc;
        e = make_bin(op, std::move(e), parse_mul(), loc);
      } else {
        return e;
      }
    }
  }
  ExprPtr parse_mul() {
    ExprPtr e = parse_unary();
    for (;;) {
      BinOp op;
      if (at(Tok::Star)) {
        op = BinOp::Mul;
      } else if (at(Tok::Slash)) {
        op = BinOp::Div;
      } else if (at(Tok::Percent)) {
        op = BinOp::Rem;
      } else {
        return e;
      }
      const ir::SourceLoc loc = advance().loc;
      e = make_bin(op, std::move(e), parse_unary(), loc);
    }
  }
  ExprPtr parse_unary() {
    if (at(Tok::Minus) || at(Tok::Bang)) {
      const UnOp op = at(Tok::Minus) ? UnOp::Neg : UnOp::Not;
      const ir::SourceLoc loc = advance().loc;
      auto e = std::make_unique<Expr>(ExprKind::Unary, loc);
      e->un_op = op;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    // Cast: '(' ('int'|'float') ')' unary
    if (at(Tok::LParen) && (at(Tok::KwInt, 1) || at(Tok::KwFloat, 1)) &&
        at(Tok::RParen, 2)) {
      advance();
      const TypeKind to = at(Tok::KwInt) ? TypeKind::Int : TypeKind::Float;
      advance();
      advance();
      auto e = std::make_unique<Expr>(ExprKind::Cast, t.loc);
      e->cast_to = to;
      e->lhs = parse_unary();
      return e;
    }
    if (match(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "to close parenthesis");
      return e;
    }
    if (at(Tok::IntLit)) {
      auto e = std::make_unique<Expr>(ExprKind::IntLit, t.loc);
      e->int_val = advance().int_val;
      return e;
    }
    if (at(Tok::FloatLit)) {
      auto e = std::make_unique<Expr>(ExprKind::FloatLit, t.loc);
      e->float_val = advance().float_val;
      return e;
    }
    if (at(Tok::Ident)) {
      const Token& name = advance();
      if (match(Tok::LParen)) {
        auto e = std::make_unique<Expr>(ExprKind::Call, name.loc);
        e->name = name.text;
        if (!at(Tok::RParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        return e;
      }
      if (match(Tok::LBracket)) {
        auto e = std::make_unique<Expr>(ExprKind::Index, name.loc);
        auto base = std::make_unique<Expr>(ExprKind::VarRef, name.loc);
        base->name = name.text;
        e->name = name.text;
        e->base = std::move(base);
        e->index = parse_expr();
        expect(Tok::RBracket, "after index");
        return e;
      }
      auto e = std::make_unique<Expr>(ExprKind::VarRef, name.loc);
      e->name = name.text;
      return e;
    }
    throw FrontendError(std::string("unexpected token ") + tok_name(t.kind),
                        t.loc);
  }

  static ExprPtr make_bin(BinOp op, ExprPtr a, ExprPtr b, ir::SourceLoc loc) {
    auto e = std::make_unique<Expr>(ExprKind::Binary, loc);
    e->bin_op = op;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, std::int64_t> const_env_;
};

}  // namespace

Program parse(std::string_view source) { return Parser(lex(source)).run(); }

}  // namespace mvgnn::frontend
