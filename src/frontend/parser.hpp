// Recursive-descent parser: token stream -> AST (no name resolution yet;
// that is sema's job, except global `const int` values which are folded
// eagerly because later array sizes depend on them).
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"

namespace mvgnn::frontend {

/// Parses a full MiniC translation unit. Throws FrontendError on syntax
/// errors.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace mvgnn::frontend
