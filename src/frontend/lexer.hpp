// Hand-written lexer for MiniC. Supports // line comments and /* block */
// comments; reports errors with precise source locations.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.hpp"

namespace mvgnn::frontend {

/// Thrown by the lexer, parser and semantic analyzer on malformed input.
struct FrontendError : std::runtime_error {
  FrontendError(const std::string& msg, ir::SourceLoc loc)
      : std::runtime_error(msg + " (line " + std::to_string(loc.line) +
                           ", col " + std::to_string(loc.col) + ")"),
        loc(loc) {}
  ir::SourceLoc loc;
};

/// Tokenizes the whole input eagerly; the parser indexes into the result.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace mvgnn::frontend
