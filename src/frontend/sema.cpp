#include "frontend/sema.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "frontend/lexer.hpp"

namespace mvgnn::frontend {

const BuiltinSig* find_builtin(const std::string& name) {
  static const std::unordered_map<std::string, BuiltinSig> builtins = {
      {"sqrt", {TypeKind::Float, {TypeKind::Float}}},
      {"exp", {TypeKind::Float, {TypeKind::Float}}},
      {"log", {TypeKind::Float, {TypeKind::Float}}},
      {"sin", {TypeKind::Float, {TypeKind::Float}}},
      {"cos", {TypeKind::Float, {TypeKind::Float}}},
      {"fabs", {TypeKind::Float, {TypeKind::Float}}},
      {"pow", {TypeKind::Float, {TypeKind::Float, TypeKind::Float}}},
      {"fmin", {TypeKind::Float, {TypeKind::Float, TypeKind::Float}}},
      {"fmax", {TypeKind::Float, {TypeKind::Float, TypeKind::Float}}},
      {"imin", {TypeKind::Int, {TypeKind::Int, TypeKind::Int}}},
      {"imax", {TypeKind::Int, {TypeKind::Int, TypeKind::Int}}},
      {"iabs", {TypeKind::Int, {TypeKind::Int}}},
  };
  const auto it = builtins.find(name);
  return it == builtins.end() ? nullptr : &it->second;
}

namespace {

/// Wraps `e` in an implicit int->float Cast when needed to reach `want`.
void coerce(ExprPtr& e, TypeKind want) {
  if (e->type == want) return;
  if (e->type == TypeKind::Int && want == TypeKind::Float) {
    auto cast = std::make_unique<Expr>(ExprKind::Cast, e->loc);
    cast->cast_to = TypeKind::Float;
    cast->type = TypeKind::Float;
    cast->lhs = std::move(e);
    e = std::move(cast);
    return;
  }
  throw FrontendError("type mismatch: have " + ir::type_name(e->type) +
                          ", need " + ir::type_name(want),
                      e->loc);
}

struct FuncSig {
  TypeKind ret;
  std::vector<TypeKind> params;
};

class Sema {
 public:
  explicit Sema(Program& prog) : prog_(prog) {
    for (const ConstDecl& c : prog.consts) {
      if (!consts_.emplace(c.name, c.value).second) {
        throw FrontendError("duplicate constant '" + c.name + "'", c.loc);
      }
    }
    for (const auto& f : prog.funcs) {
      if (find_builtin(f->name)) {
        throw FrontendError("function '" + f->name + "' shadows a builtin",
                            f->loc);
      }
      FuncSig sig;
      sig.ret = f->return_type;
      for (const ParamDecl& p : f->params) sig.params.push_back(p.type);
      if (!funcs_.emplace(f->name, std::move(sig)).second) {
        throw FrontendError("duplicate function '" + f->name + "'", f->loc);
      }
    }
  }

  void run() {
    for (auto& f : prog_.funcs) check_func(*f);
  }

 private:
  struct Symbol {
    SymKind kind;
    TypeKind type;
    std::uint32_t index;  // param or local index
  };

  void check_func(FuncDecl& fn) {
    scopes_.clear();
    scopes_.emplace_back();
    next_local_ = 0;
    cur_fn_ = &fn;
    loop_depth_ = 0;
    for (std::uint32_t i = 0; i < fn.params.size(); ++i) {
      declare(fn.params[i].name, {SymKind::Param, fn.params[i].type, i},
              fn.params[i].loc);
    }
    check_stmt(*fn.body);
    scopes_.pop_back();
  }

  void declare(const std::string& name, Symbol sym, SourceLoc loc) {
    if (consts_.count(name)) {
      throw FrontendError("'" + name + "' shadows a global constant", loc);
    }
    if (!scopes_.back().emplace(name, sym).second) {
      throw FrontendError("redeclaration of '" + name + "'", loc);
    }
  }

  [[nodiscard]] const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto f = it->find(name); f != it->end()) return &f->second;
    }
    return nullptr;
  }

  void check_stmt(Stmt& st) {
    switch (st.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (auto& s : st.body) check_stmt(*s);
        scopes_.pop_back();
        return;
      }
      case StmtKind::VarDecl: {
        if (st.array_size) {
          check_expr(*st.array_size);
          if (st.array_size->type != TypeKind::Int) {
            throw FrontendError("array size must be int", st.loc);
          }
        }
        if (st.init) {
          check_expr(*st.init);
          coerce(st.init, st.decl_type);
        }
        st.local_index = next_local_++;
        declare(st.name, {SymKind::Local, st.decl_type, st.local_index},
                st.loc);
        return;
      }
      case StmtKind::Assign: {
        check_expr(*st.target);
        if (st.target->kind == ExprKind::VarRef &&
            st.target->sym == SymKind::Const) {
          throw FrontendError("cannot assign to constant '" + st.target->name +
                                  "'",
                              st.loc);
        }
        if (!is_scalar(st.target->type)) {
          throw FrontendError("cannot assign to a whole array", st.loc);
        }
        check_expr(*st.value);
        if (st.assign_op != AssignOp::Set && st.target->type == TypeKind::Int &&
            st.value->type == TypeKind::Float) {
          throw FrontendError("compound assignment would narrow float to int",
                              st.loc);
        }
        coerce(st.value, st.target->type);
        return;
      }
      case StmtKind::If: {
        check_expr(*st.cond);
        if (st.cond->type != TypeKind::Int) {
          throw FrontendError("condition must be int", st.cond->loc);
        }
        check_stmt(*st.then_block);
        if (st.else_block) check_stmt(*st.else_block);
        return;
      }
      case StmtKind::For: {
        scopes_.emplace_back();  // loop variable scope
        check_stmt(*st.for_init);
        check_expr(*st.cond);
        if (st.cond->type != TypeKind::Int) {
          throw FrontendError("loop condition must be int", st.cond->loc);
        }
        check_stmt(*st.for_step);
        ++loop_depth_;
        check_stmt(*st.loop_body);
        --loop_depth_;
        scopes_.pop_back();
        return;
      }
      case StmtKind::While: {
        check_expr(*st.cond);
        if (st.cond->type != TypeKind::Int) {
          throw FrontendError("loop condition must be int", st.cond->loc);
        }
        ++loop_depth_;
        check_stmt(*st.loop_body);
        --loop_depth_;
        return;
      }
      case StmtKind::Return: {
        if (st.ret_value) {
          check_expr(*st.ret_value);
          if (cur_fn_->return_type == TypeKind::Void) {
            throw FrontendError("void function returns a value", st.loc);
          }
          coerce(st.ret_value, cur_fn_->return_type);
        } else if (cur_fn_->return_type != TypeKind::Void) {
          throw FrontendError("non-void function returns nothing", st.loc);
        }
        return;
      }
      case StmtKind::ExprStmt:
        check_expr(*st.value);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
        if (loop_depth_ == 0) {
          throw FrontendError("break/continue outside a loop", st.loc);
        }
        return;
    }
  }

  void check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = TypeKind::Int;
        return;
      case ExprKind::FloatLit:
        e.type = TypeKind::Float;
        return;
      case ExprKind::VarRef: {
        if (auto it = consts_.find(e.name); it != consts_.end()) {
          e.sym = SymKind::Const;
          e.int_val = it->second;
          e.type = TypeKind::Int;
          return;
        }
        const Symbol* sym = lookup(e.name);
        if (!sym) {
          throw FrontendError("use of undeclared '" + e.name + "'", e.loc);
        }
        e.sym = sym->kind;
        e.sym_index = sym->index;
        e.type = sym->type;
        return;
      }
      case ExprKind::Index: {
        check_expr(*e.base);
        if (!is_array(e.base->type)) {
          throw FrontendError("'" + e.name + "' is not an array", e.loc);
        }
        check_expr(*e.index);
        if (e.index->type != TypeKind::Int) {
          throw FrontendError("array index must be int", e.index->loc);
        }
        e.type = element_type(e.base->type);
        return;
      }
      case ExprKind::Unary: {
        check_expr(*e.lhs);
        if (e.un_op == UnOp::Not) {
          if (e.lhs->type != TypeKind::Int) {
            throw FrontendError("'!' needs an int operand", e.loc);
          }
          e.type = TypeKind::Int;
        } else {
          if (!is_scalar(e.lhs->type)) {
            throw FrontendError("'-' needs a scalar operand", e.loc);
          }
          e.type = e.lhs->type;
        }
        return;
      }
      case ExprKind::Binary: {
        check_expr(*e.lhs);
        check_expr(*e.rhs);
        if (!is_scalar(e.lhs->type) || !is_scalar(e.rhs->type)) {
          throw FrontendError("binary operator needs scalar operands", e.loc);
        }
        switch (e.bin_op) {
          case BinOp::LAnd:
          case BinOp::LOr:
            if (e.lhs->type != TypeKind::Int || e.rhs->type != TypeKind::Int) {
              throw FrontendError("logical operator needs int operands", e.loc);
            }
            e.type = TypeKind::Int;
            return;
          case BinOp::Rem:
            if (e.lhs->type != TypeKind::Int || e.rhs->type != TypeKind::Int) {
              throw FrontendError("'%' needs int operands", e.loc);
            }
            e.type = TypeKind::Int;
            return;
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge: {
            const TypeKind common =
                (e.lhs->type == TypeKind::Float || e.rhs->type == TypeKind::Float)
                    ? TypeKind::Float
                    : TypeKind::Int;
            coerce(e.lhs, common);
            coerce(e.rhs, common);
            e.type = TypeKind::Int;
            return;
          }
          default: {  // Add/Sub/Mul/Div
            const TypeKind common =
                (e.lhs->type == TypeKind::Float || e.rhs->type == TypeKind::Float)
                    ? TypeKind::Float
                    : TypeKind::Int;
            coerce(e.lhs, common);
            coerce(e.rhs, common);
            e.type = common;
            return;
          }
        }
      }
      case ExprKind::Call: {
        std::vector<TypeKind> want;
        TypeKind ret;
        if (const BuiltinSig* b = find_builtin(e.name)) {
          want = b->params;
          ret = b->ret;
        } else if (auto it = funcs_.find(e.name); it != funcs_.end()) {
          want = it->second.params;
          ret = it->second.ret;
        } else {
          throw FrontendError("call to unknown function '" + e.name + "'",
                              e.loc);
        }
        if (e.args.size() != want.size()) {
          throw FrontendError("wrong argument count for '" + e.name + "'",
                              e.loc);
        }
        for (std::size_t i = 0; i < want.size(); ++i) {
          check_expr(*e.args[i]);
          coerce(e.args[i], want[i]);
        }
        e.type = ret;
        return;
      }
      case ExprKind::Cast: {
        check_expr(*e.lhs);
        if (!is_scalar(e.lhs->type)) {
          throw FrontendError("cast needs a scalar operand", e.loc);
        }
        e.type = e.cast_to;
        return;
      }
    }
  }

  Program& prog_;
  std::unordered_map<std::string, std::int64_t> consts_;
  std::unordered_map<std::string, FuncSig> funcs_;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::uint32_t next_local_ = 0;
  FuncDecl* cur_fn_ = nullptr;
  int loop_depth_ = 0;
};

}  // namespace

void analyze(Program& prog) { Sema(prog).run(); }

}  // namespace mvgnn::frontend
