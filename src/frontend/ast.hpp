// Abstract syntax tree for MiniC.
//
// Nodes carry slots that the semantic analyzer (sema.cpp) fills in:
// expression types, resolved symbols, and folded constants. The tree is
// owned top-down through unique_ptr; visitors use plain switch on Kind.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace mvgnn::frontend {

using ir::SourceLoc;
using ir::TypeKind;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, VarRef, Index, Unary, Binary, Call, Cast,
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Eq, Ne, Lt, Le, Gt, Ge,
  LAnd, LOr,
};

enum class UnOp : std::uint8_t { Neg, Not };

/// How a VarRef resolved during sema.
enum class SymKind : std::uint8_t { Unresolved, Param, Local, Const };

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  TypeKind type = TypeKind::Void;  // filled by sema

  // IntLit / FloatLit (also holds folded global-const values).
  std::int64_t int_val = 0;
  double float_val = 0.0;

  // VarRef / Call / Index base name.
  std::string name;
  SymKind sym = SymKind::Unresolved;
  std::uint32_t sym_index = 0;  // param index or local slot index

  // Structured children.
  UnOp un_op = UnOp::Neg;
  BinOp bin_op = BinOp::Add;
  std::unique_ptr<Expr> lhs, rhs;           // Unary uses lhs only
  std::unique_ptr<Expr> base, index;        // Index
  std::vector<std::unique_ptr<Expr>> args;  // Call
  TypeKind cast_to = TypeKind::Void;        // Cast (child in lhs)

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block, VarDecl, Assign, If, For, While, Return, ExprStmt, Break, Continue,
};

enum class AssignOp : std::uint8_t { Set, Add, Sub, Mul, Div };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  int end_line = 0;  // last source line covered (blocks/loops); sema fills

  // Block.
  std::vector<StmtPtr> body;

  // VarDecl: `type name = init;` or `type name[size];`
  TypeKind decl_type = TypeKind::Void;
  std::string name;
  ExprPtr init;        // optional scalar initializer
  ExprPtr array_size;  // non-null for local arrays
  std::uint32_t local_index = 0;  // filled by sema

  // Assign: target (VarRef or Index expr) op= value.
  AssignOp assign_op = AssignOp::Set;
  ExprPtr target;
  ExprPtr value;

  // If / While: cond + then_block (+ else_block). For: init/cond/step.
  ExprPtr cond;
  StmtPtr then_block, else_block;  // If
  StmtPtr loop_body;               // For / While
  StmtPtr for_init, for_step;      // For (Assign or VarDecl statements)

  // Return.
  ExprPtr ret_value;  // may be null

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ParamDecl {
  TypeKind type = TypeKind::Void;
  std::string name;
  SourceLoc loc;
};

struct FuncDecl {
  TypeKind return_type = TypeKind::Void;
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;  // Block
  SourceLoc loc;
};

struct ConstDecl {
  std::string name;
  std::int64_t value = 0;  // global consts are integers (problem sizes)
  SourceLoc loc;
};

struct Program {
  std::vector<ConstDecl> consts;
  std::vector<std::unique_ptr<FuncDecl>> funcs;

  [[nodiscard]] const FuncDecl* find(const std::string& n) const {
    for (const auto& f : funcs) {
      if (f->name == n) return f.get();
    }
    return nullptr;
  }
};

}  // namespace mvgnn::frontend
