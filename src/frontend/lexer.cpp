#include "frontend/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace mvgnn::frontend {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::KwInt: return "'int'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwConst: return "'const'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Bang: return "'!'";
  }
  return "<bad-token>";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"int", Tok::KwInt},       {"float", Tok::KwFloat},
      {"void", Tok::KwVoid},     {"const", Tok::KwConst},
      {"if", Tok::KwIf},         {"else", Tok::KwElse},
      {"for", Tok::KwFor},       {"while", Tok::KwWhile},
      {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue},
  };
  return kw;
}

class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  [[nodiscard]] bool done() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = s_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(char c) {
    if (peek() == c) {
      advance();
      return true;
    }
    return false;
  }
  [[nodiscard]] ir::SourceLoc loc() const { return {line_, col_}; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return s_.substr(from, pos_ - from);
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor c(source);

  auto push = [&out](Tok kind, ir::SourceLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    out.push_back(std::move(t));
  };

  while (!c.done()) {
    const ir::SourceLoc loc = c.loc();
    const char ch = c.peek();

    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }
    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      if (c.done()) throw FrontendError("unterminated block comment", loc);
      c.advance();
      c.advance();
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      const std::size_t start = c.pos();
      while (std::isalnum(static_cast<unsigned char>(c.peek())) ||
             c.peek() == '_') {
        c.advance();
      }
      const std::string_view word = c.slice(start);
      if (auto it = keywords().find(word); it != keywords().end()) {
        push(it->second, loc);
      } else {
        Token t;
        t.kind = Tok::Ident;
        t.text = std::string(word);
        t.loc = loc;
        out.push_back(std::move(t));
      }
      continue;
    }
    // Numbers: integer or float (digits '.' digits, optional exponent).
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      const std::size_t start = c.pos();
      while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
      bool is_float = false;
      if (c.peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(c.peek(1)))) {
        is_float = true;
        c.advance();
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
      }
      if (c.peek() == 'e' || c.peek() == 'E') {
        std::size_t look = 1;
        if (c.peek(1) == '+' || c.peek(1) == '-') look = 2;
        if (std::isdigit(static_cast<unsigned char>(c.peek(look)))) {
          is_float = true;
          for (std::size_t i = 0; i < look; ++i) c.advance();
          while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
        }
      }
      const std::string text(c.slice(start));
      Token t;
      t.loc = loc;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_val = std::stod(text);
      } else {
        t.kind = Tok::IntLit;
        std::int64_t v = 0;
        const auto res =
            std::from_chars(text.data(), text.data() + text.size(), v);
        if (res.ec != std::errc{}) {
          throw FrontendError("integer literal out of range", loc);
        }
        t.int_val = v;
      }
      out.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    c.advance();
    switch (ch) {
      case '(': push(Tok::LParen, loc); break;
      case ')': push(Tok::RParen, loc); break;
      case '{': push(Tok::LBrace, loc); break;
      case '}': push(Tok::RBrace, loc); break;
      case '[': push(Tok::LBracket, loc); break;
      case ']': push(Tok::RBracket, loc); break;
      case ',': push(Tok::Comma, loc); break;
      case ';': push(Tok::Semi, loc); break;
      case '+': push(c.match('=') ? Tok::PlusAssign : Tok::Plus, loc); break;
      case '-': push(c.match('=') ? Tok::MinusAssign : Tok::Minus, loc); break;
      case '*': push(c.match('=') ? Tok::StarAssign : Tok::Star, loc); break;
      case '/': push(c.match('=') ? Tok::SlashAssign : Tok::Slash, loc); break;
      case '%': push(Tok::Percent, loc); break;
      case '=': push(c.match('=') ? Tok::Eq : Tok::Assign, loc); break;
      case '<': push(c.match('=') ? Tok::Le : Tok::Lt, loc); break;
      case '>': push(c.match('=') ? Tok::Ge : Tok::Gt, loc); break;
      case '!': push(c.match('=') ? Tok::Ne : Tok::Bang, loc); break;
      case '&':
        if (!c.match('&')) throw FrontendError("expected '&&'", loc);
        push(Tok::AndAnd, loc);
        break;
      case '|':
        if (!c.match('|')) throw FrontendError("expected '||'", loc);
        push(Tok::OrOr, loc);
        break;
      default:
        throw FrontendError(std::string("unexpected character '") + ch + "'",
                            loc);
    }
  }

  Token eof;
  eof.kind = Tok::End;
  eof.loc = c.loc();
  out.push_back(std::move(eof));
  return out;
}

}  // namespace mvgnn::frontend
