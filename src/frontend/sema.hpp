// Semantic analysis for MiniC: name resolution, type checking, implicit
// int->float conversions (inserted as Cast nodes), and local-slot numbering.
// Mutates the AST in place; lowering assumes a sema-checked tree.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace mvgnn::frontend {

/// Signature of one of the pure math builtins callable from MiniC.
struct BuiltinSig {
  TypeKind ret = TypeKind::Void;
  std::vector<TypeKind> params;
};

/// Returns the builtin signature for `name`, or nullptr if `name` is not a
/// builtin. Builtins: sqrt, exp, log, sin, cos, fabs, pow, fmin, fmax
/// (float), imin, imax, iabs (int).
[[nodiscard]] const BuiltinSig* find_builtin(const std::string& name);

/// Runs all semantic checks over the program. Throws FrontendError on the
/// first violation.
void analyze(Program& prog);

}  // namespace mvgnn::frontend
