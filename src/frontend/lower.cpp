#include "frontend/lower.hpp"

#include <cassert>
#include <unordered_map>
#include <utility>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/builder.hpp"

namespace mvgnn::frontend {

namespace {

using ir::BlockId;
using ir::InstrId;
using ir::IrBuilder;
using ir::Opcode;
using ir::Value;

Opcode int_binop(BinOp op) {
  switch (op) {
    case BinOp::Add: return Opcode::Add;
    case BinOp::Sub: return Opcode::Sub;
    case BinOp::Mul: return Opcode::Mul;
    case BinOp::Div: return Opcode::Div;
    case BinOp::Rem: return Opcode::Rem;
    case BinOp::Eq: return Opcode::CmpEq;
    case BinOp::Ne: return Opcode::CmpNe;
    case BinOp::Lt: return Opcode::CmpLt;
    case BinOp::Le: return Opcode::CmpLe;
    case BinOp::Gt: return Opcode::CmpGt;
    case BinOp::Ge: return Opcode::CmpGe;
    case BinOp::LAnd: return Opcode::And;
    case BinOp::LOr: return Opcode::Or;
  }
  return Opcode::Add;
}

Opcode float_binop(BinOp op) {
  switch (op) {
    case BinOp::Add: return Opcode::FAdd;
    case BinOp::Sub: return Opcode::FSub;
    case BinOp::Mul: return Opcode::FMul;
    case BinOp::Div: return Opcode::FDiv;
    case BinOp::Eq: return Opcode::FCmpEq;
    case BinOp::Ne: return Opcode::FCmpNe;
    case BinOp::Lt: return Opcode::FCmpLt;
    case BinOp::Le: return Opcode::FCmpLe;
    case BinOp::Gt: return Opcode::FCmpGt;
    case BinOp::Ge: return Opcode::FCmpGe;
    default: assert(false && "no float form"); return Opcode::FAdd;
  }
}

class FnLowering {
 public:
  FnLowering(const FuncDecl& decl, ir::Function& fn) : decl_(decl), b_(fn) {
    fn.name = decl.name;
    fn.return_type = decl.return_type;
    for (const ParamDecl& p : decl.params) {
      fn.params.push_back({p.name, p.type});
    }
  }

  void run() {
    const BlockId entry = b_.new_block("entry");
    b_.set_insert(entry);
    // Spill scalar parameters to stack slots so assignments to them and the
    // profiler's shadow memory both work uniformly.
    for (std::uint32_t i = 0; i < decl_.params.size(); ++i) {
      const ParamDecl& p = decl_.params[i];
      if (is_scalar(p.type)) {
        const InstrId slot = b_.alloca_scalar(p.type, p.name, p.loc);
        b_.store(slot, Value::arg_of(i), p.loc);
        param_slots_[i] = slot;
      }
    }
    lower_stmt(*decl_.body);
    if (!b_.block_terminated()) {
      if (decl_.return_type == TypeKind::Void) {
        b_.ret();
      } else if (decl_.return_type == TypeKind::Int) {
        b_.ret(Value::imm(std::int64_t{0}));
      } else {
        b_.ret(Value::imm(0.0));
      }
    }
  }

 private:
  struct LoopTargets {
    BlockId continue_to;
    BlockId break_to;
  };

  // ---- statements ----------------------------------------------------

  void lower_stmt(const Stmt& st) {
    if (b_.block_terminated()) return;  // unreachable code after return/break
    switch (st.kind) {
      case StmtKind::Block:
        for (const auto& s : st.body) lower_stmt(*s);
        return;
      case StmtKind::VarDecl: {
        if (st.array_size) {
          const Value size = lower_expr(*st.array_size);
          locals_[st.local_index] =
              b_.alloca_array(st.decl_type, size, st.name, st.loc);
        } else {
          const InstrId slot = b_.alloca_scalar(st.decl_type, st.name, st.loc);
          locals_[st.local_index] = slot;
          if (st.init) {
            b_.store(slot, lower_expr(*st.init), st.loc);
          }
        }
        return;
      }
      case StmtKind::Assign:
        lower_assign(st);
        return;
      case StmtKind::If:
        lower_if(st);
        return;
      case StmtKind::For:
        lower_for(st);
        return;
      case StmtKind::While:
        lower_while(st);
        return;
      case StmtKind::Return:
        if (st.ret_value) {
          b_.ret(lower_expr(*st.ret_value), st.loc);
        } else {
          b_.ret(st.loc);
        }
        return;
      case StmtKind::ExprStmt:
        lower_expr(*st.value);
        return;
      case StmtKind::Break:
        assert(!loop_stack_.empty());
        b_.br(loop_stack_.back().break_to, st.loc);
        return;
      case StmtKind::Continue:
        assert(!loop_stack_.empty());
        b_.br(loop_stack_.back().continue_to, st.loc);
        return;
    }
  }

  void lower_assign(const Stmt& st) {
    const Expr& tgt = *st.target;
    const TypeKind ty = tgt.type;
    auto apply = [&](Value old_val, Value rhs) -> Value {
      if (st.assign_op == AssignOp::Set) return rhs;
      BinOp op;
      switch (st.assign_op) {
        case AssignOp::Add: op = BinOp::Add; break;
        case AssignOp::Sub: op = BinOp::Sub; break;
        case AssignOp::Mul: op = BinOp::Mul; break;
        default: op = BinOp::Div; break;
      }
      const Opcode oc = (ty == TypeKind::Float) ? float_binop(op) : int_binop(op);
      return b_.binop(oc, ty, old_val, rhs, st.loc);
    };

    if (tgt.kind == ExprKind::VarRef) {
      const InstrId slot = slot_of(tgt);
      Value rhs = lower_expr(*st.value);
      if (st.assign_op != AssignOp::Set) {
        const Value old_val = b_.load(ty, slot, st.loc);
        rhs = apply(old_val, rhs);
      }
      b_.store(slot, rhs, st.loc);
      return;
    }
    // Element assignment: evaluate base and index once.
    const Value base = lower_expr(*tgt.base);
    const Value index = lower_expr(*tgt.index);
    Value rhs = lower_expr(*st.value);
    if (st.assign_op != AssignOp::Set) {
      const Value old_val = b_.load_idx(ty, base, index, st.loc);
      rhs = apply(old_val, rhs);
    }
    b_.store_idx(base, index, rhs, st.loc);
  }

  void lower_if(const Stmt& st) {
    const Value cond = lower_expr(*st.cond);
    const BlockId then_bb = b_.new_block("then");
    const BlockId merge_bb = b_.new_block("endif");
    const BlockId else_bb = st.else_block ? b_.new_block("else") : merge_bb;
    b_.cond_br(cond, then_bb, else_bb, st.loc);

    b_.set_insert(then_bb);
    lower_stmt(*st.then_block);
    if (!b_.block_terminated()) b_.br(merge_bb, st.loc);

    if (st.else_block) {
      b_.set_insert(else_bb);
      lower_stmt(*st.else_block);
      if (!b_.block_terminated()) b_.br(merge_bb, st.loc);
    }
    b_.set_insert(merge_bb);
  }

  void lower_for(const Stmt& st) {
    // Loop-variable scope: `for (int i = ...)` declares into locals_ here.
    lower_stmt(*st.for_init);

    ir::LoopInfo info;
    info.is_for = true;
    info.start_line = st.loc.line;
    info.end_line = st.end_line;
    // Identify the induction slot from the init assignment / declaration.
    if (st.for_init->kind == StmtKind::VarDecl) {
      info.induction_slot = locals_[st.for_init->local_index];
    } else if (st.for_init->target->kind == ExprKind::VarRef) {
      info.induction_slot = slot_of(*st.for_init->target);
    }

    const BlockId preheader = b_.new_block("for.pre");
    const BlockId header = b_.new_block("for.head");
    const BlockId body = b_.new_block("for.body");
    const BlockId latch = b_.new_block("for.latch");
    const BlockId exit = b_.new_block("for.exit");
    info.preheader = preheader;
    info.header = header;
    info.body = body;
    info.latch = latch;
    info.exit = exit;

    b_.br(preheader, st.loc);
    const ir::LoopId loop = b_.open_loop(info);

    b_.set_insert(preheader);
    emit_marker(Opcode::LoopEnter, loop, st.loc);
    b_.br(header, st.loc);

    b_.set_insert(header);
    emit_marker(Opcode::LoopHead, loop, st.loc);
    const Value cond = lower_expr(*st.cond);
    b_.cond_br(cond, body, exit, st.loc);

    loop_stack_.push_back({latch, exit});
    b_.set_insert(body);
    lower_stmt(*st.loop_body);
    if (!b_.block_terminated()) b_.br(latch, st.loc);
    loop_stack_.pop_back();

    b_.set_insert(latch);
    lower_stmt(*st.for_step);
    b_.br(header, st.loc);

    b_.set_insert(exit);
    emit_marker(Opcode::LoopExit, loop, st.loc);
    b_.close_loop();
  }

  void lower_while(const Stmt& st) {
    ir::LoopInfo info;
    info.is_for = false;
    info.start_line = st.loc.line;
    info.end_line = st.end_line;

    const BlockId preheader = b_.new_block("while.pre");
    const BlockId header = b_.new_block("while.head");
    const BlockId body = b_.new_block("while.body");
    const BlockId exit = b_.new_block("while.exit");
    info.preheader = preheader;
    info.header = header;
    info.body = body;
    info.latch = header;  // `continue` re-tests the condition directly
    info.exit = exit;

    b_.br(preheader, st.loc);
    const ir::LoopId loop = b_.open_loop(info);

    b_.set_insert(preheader);
    emit_marker(Opcode::LoopEnter, loop, st.loc);
    b_.br(header, st.loc);

    b_.set_insert(header);
    emit_marker(Opcode::LoopHead, loop, st.loc);
    const Value cond = lower_expr(*st.cond);
    b_.cond_br(cond, body, exit, st.loc);

    loop_stack_.push_back({header, exit});
    b_.set_insert(body);
    lower_stmt(*st.loop_body);
    if (!b_.block_terminated()) b_.br(header, st.loc);
    loop_stack_.pop_back();

    b_.set_insert(exit);
    emit_marker(Opcode::LoopExit, loop, st.loc);
    b_.close_loop();
  }

  void emit_marker(Opcode op, ir::LoopId loop, ir::SourceLoc loc) {
    const InstrId id = b_.emit_id(op, TypeKind::Void, {}, loc);
    b_.function().instr(id).loop = loop;
  }

  // ---- expressions ----------------------------------------------------

  Value lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::imm(e.int_val);
      case ExprKind::FloatLit:
        return Value::imm(e.float_val);
      case ExprKind::VarRef: {
        if (e.sym == SymKind::Const) return Value::imm(e.int_val);
        if (is_array(e.type)) {
          if (e.sym == SymKind::Param) return Value::arg_of(e.sym_index);
          return Value::reg_of(locals_.at(e.sym_index));
        }
        return b_.load(e.type, slot_of(e), e.loc);
      }
      case ExprKind::Index: {
        const Value base = lower_expr(*e.base);
        const Value index = lower_expr(*e.index);
        return b_.load_idx(e.type, base, index, e.loc);
      }
      case ExprKind::Unary: {
        const Value v = lower_expr(*e.lhs);
        if (e.un_op == UnOp::Not) {
          return b_.emit(Opcode::Not, TypeKind::Int, {v}, e.loc);
        }
        const Opcode oc =
            (e.type == TypeKind::Float) ? Opcode::FNeg : Opcode::Neg;
        return b_.emit(oc, e.type, {v}, e.loc);
      }
      case ExprKind::Binary: {
        const Value a = lower_expr(*e.lhs);
        const Value b = lower_expr(*e.rhs);
        // Note: MiniC's && and || evaluate both operands (no short circuit);
        // sema documents this and the corpus relies only on pure operands.
        const bool float_operands = e.lhs->type == TypeKind::Float;
        const Opcode oc =
            float_operands ? float_binop(e.bin_op) : int_binop(e.bin_op);
        return b_.binop(oc, e.type, a, b, e.loc);
      }
      case ExprKind::Call: {
        std::vector<Value> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args) args.push_back(lower_expr(*a));
        return b_.call(e.name, e.type, std::move(args), e.loc);
      }
      case ExprKind::Cast: {
        const Value v = lower_expr(*e.lhs);
        if (e.lhs->type == e.cast_to) return v;
        const Opcode oc = (e.cast_to == TypeKind::Float) ? Opcode::IntToFloat
                                                         : Opcode::FloatToInt;
        return b_.emit(oc, e.cast_to, {v}, e.loc);
      }
    }
    return Value();
  }

  /// Stack slot backing a scalar VarRef (local or spilled parameter).
  InstrId slot_of(const Expr& ref) {
    assert(ref.kind == ExprKind::VarRef);
    if (ref.sym == SymKind::Param) return param_slots_.at(ref.sym_index);
    return locals_.at(ref.sym_index);
  }

  const FuncDecl& decl_;
  IrBuilder b_;
  std::unordered_map<std::uint32_t, InstrId> locals_;
  std::unordered_map<std::uint32_t, InstrId> param_slots_;
  std::vector<LoopTargets> loop_stack_;
};

}  // namespace

ir::Module lower(const Program& prog, std::string module_name) {
  ir::Module m;
  m.name = std::move(module_name);
  for (const auto& f : prog.funcs) {
    auto fn = std::make_unique<ir::Function>();
    FnLowering(*f, *fn).run();
    m.functions.push_back(std::move(fn));
  }
  return m;
}

ir::Module compile(std::string_view source, std::string module_name) {
  Program prog = parse(source);
  analyze(prog);
  ir::Module m = lower(prog, std::move(module_name));
  ir::verify(m);
  return m;
}

}  // namespace mvgnn::frontend
