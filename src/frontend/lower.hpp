// AST -> IR lowering, plus the one-call `compile()` convenience that runs
// the whole frontend pipeline (lex, parse, sema, lower, verify).
#pragma once

#include <string>
#include <string_view>

#include "frontend/ast.hpp"
#include "ir/function.hpp"

namespace mvgnn::frontend {

/// Lowers a sema-checked program to IR. Every `for`/`while` statement gets a
/// LoopInfo record plus LoopEnter/LoopHead/LoopExit markers; scalar
/// parameters are spilled to stack slots so all variable traffic is visible
/// to the dependence profiler.
[[nodiscard]] ir::Module lower(const Program& prog, std::string module_name);

/// Full pipeline: parse + analyze + lower + ir::verify.
[[nodiscard]] ir::Module compile(std::string_view source,
                                 std::string module_name);

}  // namespace mvgnn::frontend
