// Token set of MiniC, the small C-like language in which the benchmark
// corpus (src/data) is written.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.hpp"

namespace mvgnn::frontend {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,
  FloatLit,
  // Keywords.
  KwInt, KwFloat, KwVoid, KwConst,
  KwIf, KwElse, KwFor, KwWhile, KwReturn, KwBreak, KwContinue,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi,
  // Operators.
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  Plus, Minus, Star, Slash, Percent,
  Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Bang,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier spelling
  std::int64_t int_val = 0;
  double float_val = 0.0;
  ir::SourceLoc loc;
};

[[nodiscard]] const char* tok_name(Tok t);

}  // namespace mvgnn::frontend
